"""Wire formats for Atom messages (paper §4.4).

Every plaintext routed through the mix network is a fixed-size, tagged
payload so that traps and real messages are indistinguishable until the
tag is read at the exit:

- real (trap-variant inner): ``M`` tag + serialized IND-CCA2 ciphertext
- trap: ``T`` tag + 4-byte entry gid + 16-byte nonce
- plain (basic/NIZK variants): ``P`` tag + length-prefixed user message

All payloads are padded to the same ``payload_size`` before entering
the network.  ``payload_size`` is a deployment constant derived from
the application message size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.aead import NONCE_BYTES, TAG_BYTES, AeadCiphertext
from repro.crypto.groups import GroupBackend as Group
from repro.crypto.kem import Cca2Ciphertext

TAG_MESSAGE = b"M"
TAG_TRAP = b"T"
TAG_PLAIN = b"P"
#: dummy cover messages (§3: the butterfly analysis needs a constant
#: fraction of dummies; uneven entry loads are padded with them too)
TAG_DUMMY = b"D"

TRAP_NONCE_BYTES = 16


class MessageFormatError(ValueError):
    """Raised on malformed payloads (bad tag, bad length, bad padding)."""


def pad_payload(payload: bytes, size: int) -> bytes:
    """Length-prefix and zero-pad ``payload`` to exactly ``size`` bytes."""
    if len(payload) + 4 > size:
        raise MessageFormatError(
            f"payload of {len(payload)} bytes does not fit in {size} bytes"
        )
    return struct.pack(">I", len(payload)) + payload + b"\x00" * (size - 4 - len(payload))


def unpad_payload(padded: bytes) -> bytes:
    """Invert :func:`pad_payload`."""
    if len(padded) < 4:
        raise MessageFormatError("padded payload too short")
    (length,) = struct.unpack(">I", padded[:4])
    if length + 4 > len(padded):
        raise MessageFormatError("declared length exceeds payload")
    return padded[4: 4 + length]


# -- plain payloads (basic / NIZK variants) ---------------------------------


def build_plain_payload(message: bytes, payload_size: int) -> bytes:
    """User message for the basic and NIZK variants."""
    return pad_payload(TAG_PLAIN + message, payload_size)


def parse_plain_payload(payload: bytes) -> bytes:
    body = unpad_payload(payload)
    if not body.startswith(TAG_PLAIN):
        raise MessageFormatError("not a plain payload")
    return body[len(TAG_PLAIN):]


def build_dummy_payload(nonce: bytes, payload_size: int) -> bytes:
    """A cover message: indistinguishable in size, discarded at exit."""
    return pad_payload(TAG_DUMMY + nonce, payload_size)


def is_dummy_payload(payload: bytes) -> bool:
    try:
        return unpad_payload(payload).startswith(TAG_DUMMY)
    except MessageFormatError:
        return False


# -- trap payloads -----------------------------------------------------------


def build_trap_payload(gid: int, nonce: bytes, payload_size: int) -> bytes:
    """``cT = gid‖R‖T`` (tag first in our byte layout)."""
    if len(nonce) != TRAP_NONCE_BYTES:
        raise MessageFormatError("trap nonce must be 16 bytes")
    return pad_payload(TAG_TRAP + struct.pack(">I", gid) + nonce, payload_size)


def parse_trap_payload(payload: bytes) -> Tuple[int, bytes]:
    """Return (gid, nonce) or raise :class:`MessageFormatError`."""
    body = unpad_payload(payload)
    if not body.startswith(TAG_TRAP):
        raise MessageFormatError("not a trap payload")
    body = body[len(TAG_TRAP):]
    if len(body) != 4 + TRAP_NONCE_BYTES:
        raise MessageFormatError("bad trap body length")
    (gid,) = struct.unpack(">I", body[:4])
    return gid, body[4:]


def is_trap_payload(payload: bytes) -> bool:
    try:
        parse_trap_payload(payload)
        return True
    except MessageFormatError:
        return False


# -- inner-ciphertext payloads (trap variant) --------------------------------


def serialize_cca2(group: Group, ciphertext: Cca2Ciphertext) -> bytes:
    return ciphertext.to_bytes()


def deserialize_cca2(group: Group, raw: bytes) -> Cca2Ciphertext:
    """Parse ``R || nonce || tag || body`` back into a ciphertext."""
    width = group.element_bytes
    if len(raw) < width + NONCE_BYTES + TAG_BYTES:
        raise MessageFormatError("CCA2 ciphertext too short")
    r_value = int.from_bytes(raw[:width], "big")
    try:
        R = group.element(r_value)
    except ValueError as exc:
        raise MessageFormatError("invalid encapsulation element") from exc
    body = AeadCiphertext.from_bytes(raw[width:])
    return Cca2Ciphertext(R=R, body=body)


def build_inner_payload(group: Group, ciphertext: Cca2Ciphertext, payload_size: int) -> bytes:
    """``cM = EncCCA2(pkT, m)‖M``."""
    return pad_payload(TAG_MESSAGE + serialize_cca2(group, ciphertext), payload_size)


def parse_inner_payload(group: Group, payload: bytes) -> Cca2Ciphertext:
    body = unpad_payload(payload)
    if not body.startswith(TAG_MESSAGE):
        raise MessageFormatError("not an inner-ciphertext payload")
    return deserialize_cca2(group, body[len(TAG_MESSAGE):])


def is_inner_payload(payload: bytes) -> bool:
    try:
        body = unpad_payload(payload)
    except MessageFormatError:
        return False
    return body.startswith(TAG_MESSAGE)


# -- sizing -------------------------------------------------------------------


def inner_payload_size(group: Group, message_size: int) -> int:
    """Payload bytes needed to carry an inner ciphertext of a
    ``message_size``-byte application message (plus tag and padding
    header)."""
    width = group.element_bytes
    cca2 = width + NONCE_BYTES + TAG_BYTES + (4 + message_size)  # body carries padded msg
    return 4 + 1 + cca2


def plain_payload_size(message_size: int) -> int:
    return 4 + 1 + message_size


@dataclass(frozen=True)
class PayloadSpec:
    """Sizing decisions for one deployment."""

    payload_size: int
    elements_per_message: int

    @classmethod
    def for_deployment(
        cls, group: Group, message_size: int, trap_variant: bool
    ) -> "PayloadSpec":
        size = (
            max(inner_payload_size(group, message_size), plain_payload_size(message_size))
            if trap_variant
            else plain_payload_size(message_size)
        )
        return cls(
            payload_size=size,
            elements_per_message=group.elements_for_size(size),
        )
