"""Wire formats for Atom messages (paper §4.4).

Every plaintext routed through the mix network is a fixed-size, tagged
payload so that traps and real messages are indistinguishable until the
tag is read at the exit:

- real (trap-variant inner): ``M`` tag + serialized IND-CCA2 ciphertext
- trap: ``T`` tag + 4-byte entry gid + 16-byte nonce
- plain (basic/NIZK variants): ``P`` tag + length-prefixed user message

All payloads are padded to the same ``payload_size`` before entering
the network.  ``payload_size`` is a deployment constant derived from
the application message size, and :class:`PayloadSpec` — the object
every deployment already carries — is the codec: builders are methods
that close over the spec's sizing, parsers and predicates are static
(they read sizes out of the payload itself).

The original free functions remain as thin deprecated aliases; new
code should call the :class:`PayloadSpec` methods.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.crypto.aead import NONCE_BYTES, TAG_BYTES, AeadCiphertext
from repro.crypto.groups import GroupBackend as Group
from repro.crypto.kem import Cca2Ciphertext

TAG_MESSAGE = b"M"
TAG_TRAP = b"T"
TAG_PLAIN = b"P"
#: dummy cover messages (§3: the butterfly analysis needs a constant
#: fraction of dummies; uneven entry loads are padded with them too)
TAG_DUMMY = b"D"

TRAP_NONCE_BYTES = 16


class MessageFormatError(ValueError):
    """Raised on malformed payloads (bad tag, bad length, bad padding)."""


# -- sizing helpers (free on purpose: they *derive* a spec) -------------------


def inner_payload_size(group: Group, message_size: int) -> int:
    """Payload bytes needed to carry an inner ciphertext of a
    ``message_size``-byte application message (plus tag and padding
    header)."""
    width = group.element_bytes
    cca2 = width + NONCE_BYTES + TAG_BYTES + (4 + message_size)  # body carries padded msg
    return 4 + 1 + cca2


def plain_payload_size(message_size: int) -> int:
    return 4 + 1 + message_size


@dataclass(frozen=True)
class PayloadSpec:
    """Sizing decisions *and* the payload codec for one deployment.

    Builders pad to this spec's ``payload_size``; parsers and
    predicates are static because a fixed-size payload already carries
    everything needed to read it back.
    """

    payload_size: int
    elements_per_message: int

    @classmethod
    def sized(cls, payload_size: int) -> "PayloadSpec":
        """A codec-only spec for callers that know the payload size but
        not the deployment (``elements_per_message`` is left 0 — sizing
        a ciphertext vector needs :meth:`for_deployment`)."""
        return cls(payload_size=payload_size, elements_per_message=0)

    @classmethod
    def for_deployment(
        cls, group: Group, message_size: int, trap_variant: bool
    ) -> "PayloadSpec":
        size = (
            max(inner_payload_size(group, message_size), plain_payload_size(message_size))
            if trap_variant
            else plain_payload_size(message_size)
        )
        return cls(
            payload_size=size,
            elements_per_message=group.elements_for_size(size),
        )

    # -- padding -------------------------------------------------------

    def pad(self, payload: bytes, size: int = 0) -> bytes:
        """Length-prefix and zero-pad ``payload`` to exactly ``size``
        bytes (default: this spec's ``payload_size``)."""
        size = size or self.payload_size
        if len(payload) + 4 > size:
            raise MessageFormatError(
                f"payload of {len(payload)} bytes does not fit in {size} bytes"
            )
        return struct.pack(">I", len(payload)) + payload + b"\x00" * (size - 4 - len(payload))

    @staticmethod
    def unpad(padded: bytes) -> bytes:
        """Invert :meth:`pad`."""
        if len(padded) < 4:
            raise MessageFormatError("padded payload too short")
        (length,) = struct.unpack(">I", padded[:4])
        if length + 4 > len(padded):
            raise MessageFormatError("declared length exceeds payload")
        return padded[4: 4 + length]

    # -- plain payloads (basic / NIZK variants) -------------------------

    def build_plain(self, message: bytes) -> bytes:
        """User message for the basic and NIZK variants."""
        return self.pad(TAG_PLAIN + message)

    @staticmethod
    def parse_plain(payload: bytes) -> bytes:
        body = PayloadSpec.unpad(payload)
        if not body.startswith(TAG_PLAIN):
            raise MessageFormatError("not a plain payload")
        return body[len(TAG_PLAIN):]

    def build_dummy(self, nonce: bytes) -> bytes:
        """A cover message: indistinguishable in size, discarded at exit."""
        return self.pad(TAG_DUMMY + nonce)

    @staticmethod
    def is_dummy(payload: bytes) -> bool:
        try:
            return PayloadSpec.unpad(payload).startswith(TAG_DUMMY)
        except MessageFormatError:
            return False

    # -- trap payloads ---------------------------------------------------

    def build_trap(self, gid: int, nonce: bytes) -> bytes:
        """``cT = gid‖R‖T`` (tag first in our byte layout)."""
        if len(nonce) != TRAP_NONCE_BYTES:
            raise MessageFormatError("trap nonce must be 16 bytes")
        return self.pad(TAG_TRAP + struct.pack(">I", gid) + nonce)

    @staticmethod
    def parse_trap(payload: bytes) -> Tuple[int, bytes]:
        """Return (gid, nonce) or raise :class:`MessageFormatError`."""
        body = PayloadSpec.unpad(payload)
        if not body.startswith(TAG_TRAP):
            raise MessageFormatError("not a trap payload")
        body = body[len(TAG_TRAP):]
        if len(body) != 4 + TRAP_NONCE_BYTES:
            raise MessageFormatError("bad trap body length")
        (gid,) = struct.unpack(">I", body[:4])
        return gid, body[4:]

    @staticmethod
    def is_trap(payload: bytes) -> bool:
        try:
            PayloadSpec.parse_trap(payload)
            return True
        except MessageFormatError:
            return False

    # -- inner-ciphertext payloads (trap variant) ------------------------

    @staticmethod
    def cca2_to_bytes(group: Group, ciphertext: Cca2Ciphertext) -> bytes:
        return ciphertext.to_bytes()

    @staticmethod
    def cca2_from_bytes(group: Group, raw: bytes) -> Cca2Ciphertext:
        """Parse ``R || nonce || tag || body`` back into a ciphertext."""
        width = group.element_bytes
        if len(raw) < width + NONCE_BYTES + TAG_BYTES:
            raise MessageFormatError("CCA2 ciphertext too short")
        r_value = int.from_bytes(raw[:width], "big")
        try:
            R = group.element(r_value)
        except ValueError as exc:
            raise MessageFormatError("invalid encapsulation element") from exc
        body = AeadCiphertext.from_bytes(raw[width:])
        return Cca2Ciphertext(R=R, body=body)

    def build_inner(self, group: Group, ciphertext: Cca2Ciphertext) -> bytes:
        """``cM = EncCCA2(pkT, m)‖M``."""
        return self.pad(TAG_MESSAGE + ciphertext.to_bytes())

    @staticmethod
    def parse_inner(group: Group, payload: bytes) -> Cca2Ciphertext:
        body = PayloadSpec.unpad(payload)
        if not body.startswith(TAG_MESSAGE):
            raise MessageFormatError("not an inner-ciphertext payload")
        return PayloadSpec.cca2_from_bytes(group, body[len(TAG_MESSAGE):])

    @staticmethod
    def is_inner(payload: bytes) -> bool:
        try:
            body = PayloadSpec.unpad(payload)
        except MessageFormatError:
            return False
        return body.startswith(TAG_MESSAGE)


# -- deprecated free-function aliases ----------------------------------------
#
# The pre-PayloadSpec codec surface.  Each is a thin delegation kept so
# external callers and old notebooks keep working; new code should use
# the PayloadSpec methods above.  Builders that used to take an
# explicit size construct a throwaway spec — payload sizing has no
# other state.


_spec = PayloadSpec.sized


def pad_payload(payload: bytes, size: int) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.pad`."""
    return _spec(size).pad(payload)


def unpad_payload(padded: bytes) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.unpad`."""
    return PayloadSpec.unpad(padded)


def build_plain_payload(message: bytes, payload_size: int) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.build_plain`."""
    return _spec(payload_size).build_plain(message)


def parse_plain_payload(payload: bytes) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.parse_plain`."""
    return PayloadSpec.parse_plain(payload)


def build_dummy_payload(nonce: bytes, payload_size: int) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.build_dummy`."""
    return _spec(payload_size).build_dummy(nonce)


def is_dummy_payload(payload: bytes) -> bool:
    """Deprecated alias for :meth:`PayloadSpec.is_dummy`."""
    return PayloadSpec.is_dummy(payload)


def build_trap_payload(gid: int, nonce: bytes, payload_size: int) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.build_trap`."""
    return _spec(payload_size).build_trap(gid, nonce)


def parse_trap_payload(payload: bytes) -> Tuple[int, bytes]:
    """Deprecated alias for :meth:`PayloadSpec.parse_trap`."""
    return PayloadSpec.parse_trap(payload)


def is_trap_payload(payload: bytes) -> bool:
    """Deprecated alias for :meth:`PayloadSpec.is_trap`."""
    return PayloadSpec.is_trap(payload)


def serialize_cca2(group: Group, ciphertext: Cca2Ciphertext) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.cca2_to_bytes`."""
    return ciphertext.to_bytes()


def deserialize_cca2(group: Group, raw: bytes) -> Cca2Ciphertext:
    """Deprecated alias for :meth:`PayloadSpec.cca2_from_bytes`."""
    return PayloadSpec.cca2_from_bytes(group, raw)


def build_inner_payload(group: Group, ciphertext: Cca2Ciphertext, payload_size: int) -> bytes:
    """Deprecated alias for :meth:`PayloadSpec.build_inner`."""
    return _spec(payload_size).build_inner(group, ciphertext)


def parse_inner_payload(group: Group, payload: bytes) -> Cca2Ciphertext:
    """Deprecated alias for :meth:`PayloadSpec.parse_inner`."""
    return PayloadSpec.parse_inner(group, payload)


def is_inner_payload(payload: bytes) -> bool:
    """Deprecated alias for :meth:`PayloadSpec.is_inner`."""
    return PayloadSpec.is_inner(payload)
