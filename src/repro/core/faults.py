"""Churn tolerance and buddy-group recovery (paper §4.5).

Many-trust groups already survive up to ``h - 1`` fail-stop members
(only ``k - (h - 1)`` members participate in mixing).  When a group
loses *more* than ``h - 1`` members it stalls; the buddy-group
mechanism recovers it:

- At formation time, each member of group ``g`` Shamir-shares its DVSS
  share among the members of ``g``'s buddy group(s).
- On stall, a replacement group is formed; each new member collects the
  sub-shares of one original member from a buddy group and reconstructs
  that member's share.  The restored group has the *same* group key and
  share structure, so mixing resumes where it stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.group import GroupContext, GroupStalled
from repro.core.server import AtomServer
from repro.crypto.groups import DeterministicRng, Group
from repro.crypto.secret_sharing import Share, shamir_reconstruct, shamir_share


@dataclass
class BuddyEscrow:
    """Sub-shares of one group's member shares, held by a buddy group.

    ``subshares[i][j]`` is buddy-member ``j``'s sub-share of original
    member ``i``'s DVSS share.
    """

    gid: int
    buddy_gid: int
    threshold: int
    subshares: List[List[Share]]


class BuddySystem:
    """Manages escrow and recovery across a deployment's groups."""

    def __init__(self, group: Group):
        self.group = group
        self._escrows: Dict[int, List[BuddyEscrow]] = {}

    def escrow(
        self,
        ctx: GroupContext,
        buddy: GroupContext,
        rng: Optional[DeterministicRng] = None,
    ) -> BuddyEscrow:
        """Each member of ``ctx`` shares its DVSS share with ``buddy``."""
        if ctx.mode != "manytrust":
            raise ValueError("buddy escrow requires a many-trust group")
        buddy_size = len(buddy.servers)
        threshold = buddy.threshold
        subshares = []
        for member_share in ctx._threshold_scheme.dvss.shares:
            subshares.append(
                shamir_share(self.group, member_share.value, threshold, buddy_size, rng)
            )
        escrow = BuddyEscrow(
            gid=ctx.gid, buddy_gid=buddy.gid, threshold=threshold, subshares=subshares
        )
        self._escrows.setdefault(ctx.gid, []).append(escrow)
        return escrow

    def escrows_for(self, gid: int) -> List[BuddyEscrow]:
        return self._escrows.get(gid, [])

    def drop_escrows(self, gid: int) -> None:
        """Discard a group's escrows (e.g. when an epoch rekeys: stale
        sub-shares of a retired key must not restore a new-key group)."""
        self._escrows.pop(gid, None)

    def recover(
        self,
        stalled: GroupContext,
        replacements: Sequence[AtomServer],
        buddy_alive: Optional[Sequence[int]] = None,
    ) -> GroupContext:
        """Rebuild a stalled group with ``replacements`` (§4.5).

        ``buddy_alive`` restricts which buddy members respond (must be
        at least the escrow threshold).  The restored context keeps the
        original group key and per-member share values; the replacement
        servers simply assume the original member positions.
        """
        escrows = self.escrows_for(stalled.gid)
        if not escrows:
            raise GroupStalled(stalled.gid, len(stalled.alive_positions()), stalled.threshold)
        escrow = escrows[0]
        if len(replacements) != len(stalled.servers):
            raise ValueError("need one replacement per original member")

        recovered_shares: List[Share] = []
        for member_index, subshares in enumerate(escrow.subshares):
            available = (
                [subshares[j] for j in buddy_alive]
                if buddy_alive is not None
                else list(subshares)
            )
            if len(available) < escrow.threshold:
                raise GroupStalled(stalled.gid, len(available), escrow.threshold)
            value = shamir_reconstruct(self.group, available[: escrow.threshold])
            recovered_shares.append(Share(member_index + 1, value))

        return restore_group(stalled, replacements, recovered_shares)


def restore_group(
    stalled: GroupContext,
    replacements: Sequence[AtomServer],
    shares: List[Share],
) -> GroupContext:
    """Build a new :class:`GroupContext` with the old key material.

    We clone the stalled context's threshold scheme and swap in the
    replacement servers; the recovered shares must match the originals
    (they do, by Shamir correctness — asserted here).
    """
    original = stalled._threshold_scheme.dvss.shares
    for recovered, orig in zip(shares, original):
        if recovered.value != orig.value:
            raise ValueError("recovered share mismatch: escrow corrupted")

    restored = GroupContext.__new__(GroupContext)
    restored.gid = stalled.gid
    restored.servers = list(replacements)
    restored.group = stalled.group
    restored.scheme = stalled.scheme
    restored.mode = stalled.mode
    restored.h = stalled.h
    restored.nizk_rounds = stalled.nizk_rounds
    restored.k = len(replacements)
    restored.threshold = stalled.threshold
    restored._threshold_scheme = stalled._threshold_scheme
    restored.public_key = stalled.public_key
    restored.member_keys = None
    restored.forge_payload_fn = stalled.forge_payload_fn
    return restored
