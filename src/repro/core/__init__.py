"""The Atom protocol (paper §2–§4).

Layered as the paper presents it:

- :mod:`repro.core.messages` — wire formats: padding, trap payloads
  (``gid‖R‖T``), inner-ciphertext payloads (``EncCCA2(...)‖M``).
- :mod:`repro.core.server` — server identity, per-round keys, fault and
  adversary state.
- :mod:`repro.core.directory` — the directory authority: registry,
  anytrust / many-trust group formation from beacon randomness (§4.1),
  staggered positioning (§4.7).
- :mod:`repro.core.group` — the group mixing protocol: Algorithm 1
  (basic), and Algorithm 2 (NIZK-verified).
- :mod:`repro.core.client` — user-side submission for every variant.
- :mod:`repro.core.trustees` — the trap variant's extra anytrust group.
- :mod:`repro.core.protocol` — full-deployment orchestration: entry
  collection, T mixing iterations over the permutation network, exit
  handling, trap checks, key release, fault recovery hooks.
- :mod:`repro.core.faults` — many-trust churn tolerance and buddy-group
  recovery (§4.5).
- :mod:`repro.core.blame` — malicious-user identification (§4.6).
- :mod:`repro.core.pipeline` — the multi-round stream engine: persistent
  deployments, pipelined intake, fault schedules, recovery and blame
  integrated into a running stream (§4.5–§4.7).
"""

from repro.core.protocol import AtomDeployment, DeploymentConfig, RoundResult
from repro.core.client import Client
from repro.core.pipeline import (
    FaultSchedule,
    StreamConfig,
    StreamEngine,
    StreamReport,
)
from repro.core.server import AtomServer, Behavior

__all__ = [
    "AtomDeployment",
    "DeploymentConfig",
    "RoundResult",
    "Client",
    "AtomServer",
    "Behavior",
    "FaultSchedule",
    "StreamConfig",
    "StreamEngine",
    "StreamReport",
]
