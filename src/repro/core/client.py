"""User-side message preparation (paper §3, §4.2, §4.4).

For the basic and NIZK variants a client pads its message, encrypts to
its chosen entry group's key, and attaches an ``EncProof`` per
ciphertext part (bound to the entry gid).

For the trap variant the client double-envelopes (§4.4):

1. ``cM <- EncCCA2(pkT, m) ‖ M`` under the trustees' key,
2. ``cT <- gid ‖ R ‖ T`` with a fresh 16-byte nonce,
3. both are padded to the same size, encrypted to the entry group
   (with EncProofs), and submitted *in a random order* together with
   the SHA-3 commitment of the trap payload.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import messages as fmt
from repro.crypto.commit import commit
from repro.crypto.elgamal import AtomElGamal
from repro.crypto.groups import DeterministicRng, GroupBackend as Group, GroupElement
from repro.crypto.kem import cca2_encrypt
from repro.crypto.nizk import EncProof, prove_encryption, verify_encryption
from repro.crypto.vector import CiphertextVector, encrypt_vector


@dataclass(frozen=True)
class Submission:
    """One encrypted payload plus its per-part proofs of knowledge."""

    vector: CiphertextVector
    proofs: Tuple[EncProof, ...]

    def verify(self, group: Group, public_key: GroupElement, gid: int) -> bool:
        """Run by every server of the entry group on arrival."""
        if len(self.vector.parts) != len(self.proofs):
            return False
        return all(
            verify_encryption(group, part, proof, public_key, gid)
            for part, proof in zip(self.vector.parts, self.proofs)
        )


@dataclass(frozen=True)
class TrapSubmission:
    """The trap variant's pair: two submissions in random order plus the
    trap commitment.  Which of the two is the trap is the client's
    secret (the 50% tampering-detection probability relies on it)."""

    pair: Tuple[Submission, Submission]
    trap_commitment: bytes
    gid: int

    def verify(self, group: Group, public_key: GroupElement) -> bool:
        return all(s.verify(group, public_key, self.gid) for s in self.pair)


class Client:
    """A user of the Atom network."""

    def __init__(self, group: Group, rng: Optional[DeterministicRng] = None):
        self.group = group
        self.scheme = AtomElGamal(group)
        self.rng = rng

    # -- basic / NIZK variants ------------------------------------------

    def prepare_plain(
        self,
        message: bytes,
        entry_key: GroupElement,
        gid: int,
        payload_size: int,
    ) -> Submission:
        """Pad, encrypt to the entry group, and prove plaintext knowledge."""
        payload = fmt.PayloadSpec.sized(payload_size).build_plain(message)
        return self._submit_payload(payload, entry_key, gid)

    # -- trap variant -----------------------------------------------------

    def prepare_trap_pair(
        self,
        message: bytes,
        entry_key: GroupElement,
        trustee_key: GroupElement,
        gid: int,
        payload_size: int,
        message_size: int,
    ) -> Tuple[TrapSubmission, bytes]:
        """Build the (inner, trap) pair of §4.4.

        Returns the submission and the trap payload (kept by tests to
        verify commitments; a real client keeps it private).
        """
        spec = fmt.PayloadSpec.sized(payload_size)
        padded_msg = spec.pad(message, 4 + message_size)
        inner = cca2_encrypt(self.group, trustee_key, padded_msg, self.rng)
        inner_payload = spec.build_inner(self.group, inner)

        nonce = (
            self.rng.randbytes(fmt.TRAP_NONCE_BYTES)
            if self.rng is not None
            else secrets.token_bytes(fmt.TRAP_NONCE_BYTES)
        )
        trap_payload = spec.build_trap(gid, nonce)

        sub_inner = self._submit_payload(inner_payload, entry_key, gid)
        sub_trap = self._submit_payload(trap_payload, entry_key, gid)

        flip = (
            self.rng.randint(0, 1)
            if self.rng is not None
            else secrets.randbelow(2)
        )
        pair = (sub_trap, sub_inner) if flip else (sub_inner, sub_trap)
        return (
            TrapSubmission(pair=pair, trap_commitment=commit(trap_payload), gid=gid),
            trap_payload,
        )

    # -- internals ----------------------------------------------------------

    def _submit_payload(
        self, payload: bytes, entry_key: GroupElement, gid: int
    ) -> Submission:
        vector, rands = encrypt_vector(self.scheme, entry_key, payload, self.rng)
        proofs = tuple(
            prove_encryption(self.group, part, r, entry_key, gid)
            for part, r in zip(vector.parts, rands)
        )
        return Submission(vector=vector, proofs=proofs)
