"""The trap variant's trustee group (paper §4.4, Figure 2).

The trustees are an extra anytrust (here: threshold, so they double as
a highly-available buddy group — §4.5) group that:

1. generates a per-round threshold public key ``pkT`` (users encrypt
   inner ciphertexts to it);
2. collects per-group reports after routing completes:
   (traps consistent?, inner ciphertexts consistent?, #traps, #inner);
3. releases its decryption-key shares **iff** every report is clean and
   the global trap count equals the global inner-ciphertext count;
   otherwise every trustee deletes its share and the round aborts
   without revealing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.groups import DeterministicRng, Group, GroupElement
from repro.crypto.secret_sharing import DvssProtocol
from repro.crypto.threshold import ThresholdElGamal


@dataclass(frozen=True)
class GroupReport:
    """What each group reports to the trustees after routing (§4.4)."""

    gid: int
    traps_ok: bool
    inner_ok: bool
    num_traps: int
    num_inner: int


class KeyWithheld(RuntimeError):
    """Trustees refused to release the decryption key: checks failed."""

    def __init__(self, reason: str, offending_gids: List[int]):
        self.reason = reason
        self.offending_gids = offending_gids
        super().__init__(f"trustees withheld key: {reason} (groups {offending_gids})")


class TrusteeGroup:
    """Threshold trustee group with report collection and key release."""

    def __init__(
        self,
        group: Group,
        num_trustees: int = 3,
        threshold: Optional[int] = None,
        rng: Optional[DeterministicRng] = None,
    ):
        self.group = group
        self.num_trustees = num_trustees
        self.threshold = threshold if threshold is not None else num_trustees
        dvss = DvssProtocol(group, num_trustees, self.threshold).run(rng)
        self._scheme = ThresholdElGamal(group, dvss)
        self._reports: Dict[int, GroupReport] = {}
        self._released: Optional[int] = None
        self._deleted = False

    @property
    def public_key(self) -> GroupElement:
        """``pkT``: what clients encrypt inner ciphertexts to."""
        return self._scheme.public_key

    # -- report collection -------------------------------------------------

    def submit_report(self, report: GroupReport) -> None:
        if self._deleted:
            raise RuntimeError("round already aborted; shares deleted")
        self._reports[report.gid] = report

    def reports_received(self) -> int:
        return len(self._reports)

    # -- release decision ----------------------------------------------------

    def evaluate(self, expected_groups: int) -> List[int]:
        """Raise :class:`KeyWithheld` unless every check passes.

        Returns the released share values on success.  Trustees delete
        their shares on failure (``_deleted``), so a failed round can
        never be decrypted later.
        """
        if self._released is not None:
            return self._release_shares()
        if len(self._reports) != expected_groups:
            missing = expected_groups - len(self._reports)
            self._delete_shares()
            raise KeyWithheld(f"{missing} group reports missing", [])

        bad_traps = [r.gid for r in self._reports.values() if not r.traps_ok]
        bad_inner = [r.gid for r in self._reports.values() if not r.inner_ok]
        if bad_traps or bad_inner:
            self._delete_shares()
            raise KeyWithheld("group reported violation", sorted(bad_traps + bad_inner))

        total_traps = sum(r.num_traps for r in self._reports.values())
        total_inner = sum(r.num_inner for r in self._reports.values())
        if total_traps != total_inner:
            self._delete_shares()
            raise KeyWithheld(
                f"count mismatch: {total_traps} traps vs {total_inner} inner", []
            )

        self._released = self._scheme.reconstruct_secret(
            {i: self._scheme.dvss.shares[i].value for i in range(self.threshold)}
        )
        return self._release_shares()

    def secret_key(self) -> int:
        """The reconstructed decryption key (only after a clean release)."""
        if self._released is None:
            raise RuntimeError("key not released; call evaluate() first")
        return self._released

    # -- internals -------------------------------------------------------------

    def _release_shares(self) -> List[int]:
        return [s.value for s in self._scheme.dvss.shares[: self.threshold]]

    def _delete_shares(self) -> None:
        self._deleted = True
