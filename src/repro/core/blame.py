"""Malicious-user identification after a disrupted round (paper §4.6).

In the trap variant, a malicious *user* can disrupt a round by
submitting (1) a trap that does not match its commitment (or reusing
someone's gid with garbage), or (2) duplicate inner ciphertexts.  These
are only detected after routing completes, so the round aborts — and
then this protocol assigns blame:

1. every entry group reveals its per-round private keys,
2. every submission is decrypted back to its two payloads,
3. a user is reported if its trap payload does not match its
   commitment, if it submitted zero or two traps, or if its inner
   ciphertext duplicates another user's.

The revealed keys are per-round mixing keys, so no *other* round's
traffic is exposed, and the aborted round's inner ciphertexts remain
protected by the trustees' (never released) key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core import messages as fmt
from repro.core.client import TrapSubmission
from repro.core.group import GroupContext
from repro.crypto.commit import verify_commitment
from repro.crypto.vector import CiphertextVector


@dataclass(frozen=True)
class BlameReport:
    """Outcome of the §4.6 identification protocol."""

    bad_trap_users: Tuple[int, ...]
    duplicate_inner_users: Tuple[int, ...]

    @property
    def all_blamed(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.bad_trap_users) | set(self.duplicate_inner_users)))


def _decrypt_submission_payload(ctx: GroupContext, vector: CiphertextVector) -> bytes:
    """Decrypt a user submission with the revealed entry-group keys."""
    secrets_list = ctx.reveal_secrets()
    if ctx.mode == "anytrust":
        total = sum(secrets_list) % ctx.group.q
    else:
        from repro.crypto.secret_sharing import Share, shamir_reconstruct

        shares = [Share(i + 1, v) for i, v in enumerate(secrets_list)]
        total = shamir_reconstruct(ctx.group, shares[: ctx.threshold])
    plain_parts = [ctx.scheme.decrypt(total, part) for part in vector.parts]
    return ctx.group.decode_chunks(plain_parts)


def identify_malicious_users(
    entry_groups: Sequence[GroupContext],
    submissions: Dict[int, Tuple[int, TrapSubmission]],
) -> BlameReport:
    """Run the identification protocol over all entry groups.

    ``submissions`` maps user id to (entry gid, its trap submission),
    as recorded by the entry groups during collection.
    """
    by_gid: Dict[int, GroupContext] = {ctx.gid: ctx for ctx in entry_groups}
    bad_trap_users: List[int] = []
    inner_owner: Dict[bytes, int] = {}
    duplicate_users: List[int] = []

    for user_id, (gid, submission) in sorted(submissions.items()):
        ctx = by_gid[gid]
        payloads = [
            _decrypt_submission_payload(ctx, sub.vector) for sub in submission.pair
        ]
        traps = [p for p in payloads if fmt.PayloadSpec.is_trap(p)]
        inners = [p for p in payloads if fmt.PayloadSpec.is_inner(p)]

        if len(traps) != 1 or len(inners) != 1:
            bad_trap_users.append(user_id)
            continue
        trap = traps[0]
        if not verify_commitment(submission.trap_commitment, trap):
            bad_trap_users.append(user_id)
            continue
        trap_gid, _ = fmt.PayloadSpec.parse_trap(trap)
        if trap_gid != gid:
            bad_trap_users.append(user_id)
            continue

        inner = inners[0]
        if inner in inner_owner:
            duplicate_users.append(user_id)
            duplicate_users.append(inner_owner[inner])
        else:
            inner_owner[inner] = user_id

    return BlameReport(
        bad_trap_users=tuple(sorted(set(bad_trap_users))),
        duplicate_inner_users=tuple(sorted(set(duplicate_users))),
    )
