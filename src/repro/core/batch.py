"""Struct-of-arrays ciphertext batches: the bounded-memory data plane.

A :class:`CiphertextBatch` keeps many
:class:`~repro.crypto.vector.CiphertextVector` messages as **one
contiguous byte buffer plus an offset table** instead of a Python
object graph.  The per-record byte layout is exactly the envelope
layer's ``_write_vector`` format (PR 4's wire substrate)::

    record := u32(part count) part*
    part   := R(element) c(element) u8(Y present) [Y(element)]

where elements are the fixed-width big-endian integers that
``element.to_bytes()`` / ``GroupBackend.element`` round-trip.  Because
the layout is byte-identical to the wire codec, a batch can be spliced
straight into a MIX_BATCH envelope body (and parsed straight out of
one) with **zero re-encoding**, and a batch snapshot written to the
checkpoint WAL is byte-identical to the object-path snapshot.

Operations the hot path needs are O(1) or O(bytes), never
O(python objects):

- :meth:`slice` / :meth:`split` — zero-copy views (memoryview over the
  parent buffer, offsets rebased), used for Algorithm 1's "Divide".
- :meth:`extend_raw` / :meth:`concat` — buffer splices, used when a
  node adopts the sender-sorted batches of a committed layer.
- :meth:`vector` / iteration — decode one record at a time, so legacy
  call sites (exit, dummy padding, blame) stream through a batch
  without ever materializing the whole object graph.

Encoding is group-independent (``element.to_bytes()`` carries its own
width); only decoding needs the bound ``group`` to validate membership
— which is why parsing a batch off the wire is a *structural* scan
(counts, flags, fixed widths) and element validation happens lazily on
first access.

This module deliberately does **not** import :mod:`repro.net.envelopes`
(which imports the client/group layers above us); the envelope codec
imports us instead.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.crypto.elgamal import AtomCiphertext
from repro.crypto.groups import GroupBackend as Group
from repro.crypto.vector import CiphertextVector

_U32 = struct.Struct(">I")

#: smallest possible record: u32 part count with zero parts
_MIN_RECORD = 4


class BatchFormatError(ValueError):
    """Malformed batch bytes (truncated record, bad flag, bad count,
    invalid group element)."""


def vector_fingerprint(vec: CiphertextVector) -> bytes:
    """Fixed-size (32-byte) identity of a vector for duplicate filters.

    The intake duplicate filter used to keep whole serialized vectors;
    hashing keeps the filter's memory O(32 bytes) per message at
    10^5-10^6 message scale.
    """
    return hashlib.sha256(vec.to_bytes()).digest()


def encode_vector_record(out: bytearray, vec: CiphertextVector) -> None:
    """Append one vector's wire record to ``out`` (no group needed:
    ``element.to_bytes()`` is the fixed-width wire encoding)."""
    out += _U32.pack(len(vec.parts))
    for part in vec.parts:
        out += part.R.to_bytes()
        out += part.c.to_bytes()
        if part.Y is None:
            out += b"\x00"
        else:
            out += b"\x01"
            out += part.Y.to_bytes()


def encode_vector_records(vectors: Sequence[CiphertextVector]) -> bytes:
    """Canonical record bytes of a vector sequence (sans count prefix)."""
    out = bytearray()
    for vec in vectors:
        encode_vector_record(out, vec)
    return bytes(out)


def _scan_record(buf, pos: int, end: int, element_bytes: int) -> int:
    """Structurally walk one record starting at ``pos``; return its end
    offset.  Validates counts/flags/bounds only — no element math."""
    if pos + 4 > end:
        raise BatchFormatError(f"truncated record header at offset {pos}")
    (nparts,) = _U32.unpack_from(buf, pos)
    pos += 4
    # Each part is at least 2 elements + 1 flag byte: a count that
    # cannot fit in the remaining bytes is rejected before looping.
    if nparts > (end - pos) // (2 * element_bytes + 1):
        raise BatchFormatError(
            f"record claims {nparts} parts but only {end - pos} bytes remain"
        )
    for _ in range(nparts):
        pos += 2 * element_bytes
        flag = buf[pos]
        pos += 1
        if flag == 1:
            pos += element_bytes
            if pos > end:
                raise BatchFormatError(f"truncated Y element at offset {pos}")
        elif flag != 0:
            raise BatchFormatError(f"bad Y-presence flag {flag} at offset {pos - 1}")
    return pos


class CiphertextBatch:
    """Many ciphertext vectors in one buffer + offset table."""

    __slots__ = ("group", "_buf", "_starts")

    def __init__(self, group: Group, buf=None, starts: Optional[List[int]] = None):
        self.group = group
        #: bytearray when owned, memoryview/bytes when a zero-copy view
        self._buf = bytearray() if buf is None else buf
        #: start offset of record i; record i ends at start of i+1 (or
        #: at the end of the buffer — views end exactly on a record)
        self._starts: List[int] = [] if starts is None else starts

    # -- construction --------------------------------------------------

    @classmethod
    def from_vectors(
        cls, group: Group, vectors: Iterable[CiphertextVector]
    ) -> "CiphertextBatch":
        batch = cls(group)
        for vec in vectors:
            batch.append(vec)
        return batch

    @classmethod
    def parse(cls, group: Group, data, pos: int = 0):
        """Parse ``u32 count || records`` starting at ``pos`` (the
        ``_write_vectors`` wire layout).  Structural scan only: element
        validation is deferred to first decode.  Returns
        ``(batch, end_offset)``."""
        end = len(data)
        if pos + 4 > end:
            raise BatchFormatError(f"truncated batch count at offset {pos}")
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        if count > (end - pos) // _MIN_RECORD + 1:
            raise BatchFormatError(
                f"batch claims {count} records but only {end - pos} bytes remain"
            )
        eb = group.element_bytes
        base = pos
        starts: List[int] = []
        for _ in range(count):
            starts.append(pos - base)
            pos = _scan_record(data, pos, end, eb)
        view = memoryview(data)[base:pos]
        return cls(group, view, starts), pos

    @classmethod
    def from_bytes(cls, group: Group, data: bytes) -> "CiphertextBatch":
        batch, end = cls.parse(group, data, 0)
        if end != len(data):
            raise BatchFormatError(f"{len(data) - end} trailing bytes after batch")
        return batch

    @classmethod
    def concat(
        cls, group: Group, batches: Iterable["CiphertextBatch"]
    ) -> "CiphertextBatch":
        out = cls(group)
        for batch in batches:
            out.extend_raw(batch)
        return out

    # -- sizing ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    @property
    def nbytes(self) -> int:
        """Bytes held by the record buffer (the batch's real RSS)."""
        return len(self._buf)

    def _end(self, i: int) -> int:
        return self._starts[i + 1] if i + 1 < len(self._starts) else len(self._buf)

    # -- mutation (owned buffers only; views copy-on-write) -------------

    def _materialize(self) -> bytearray:
        if not isinstance(self._buf, bytearray):
            self._buf = bytearray(self._buf)
        return self._buf

    def append(self, vec: CiphertextVector) -> None:
        buf = self._materialize()
        self._starts.append(len(buf))
        encode_vector_record(buf, vec)

    def extend(
        self, items: Union["CiphertextBatch", Iterable[CiphertextVector]]
    ) -> None:
        if isinstance(items, CiphertextBatch):
            self.extend_raw(items)
            return
        for vec in items:
            self.append(vec)

    def extend_raw(self, other: "CiphertextBatch") -> None:
        """Splice another batch's records in without decoding."""
        buf = self._materialize()
        base = len(buf)
        self._starts.extend(base + s for s in other._starts)
        buf += other._buf

    def copy(self) -> "CiphertextBatch":
        return CiphertextBatch(self.group, bytearray(self._buf), list(self._starts))

    # -- access ----------------------------------------------------------

    def vector(self, i: int) -> CiphertextVector:
        """Decode record ``i`` (the only place element validation runs)."""
        buf = self._buf
        eb = self.group.element_bytes
        pos = self._starts[i]
        end = self._end(i)
        (nparts,) = _U32.unpack_from(buf, pos)
        pos += 4
        parts = []
        try:
            for _ in range(nparts):
                R = self.group.element(int.from_bytes(buf[pos: pos + eb], "big"))
                pos += eb
                c = self.group.element(int.from_bytes(buf[pos: pos + eb], "big"))
                pos += eb
                Y = None
                if buf[pos] == 1:
                    pos += 1
                    Y = self.group.element(
                        int.from_bytes(buf[pos: pos + eb], "big")
                    )
                    pos += eb
                else:
                    pos += 1
                parts.append(AtomCiphertext(R=R, c=c, Y=Y))
        except ValueError as exc:
            raise BatchFormatError(f"invalid element in record {i}: {exc}") from exc
        if pos != end:
            raise BatchFormatError(f"record {i} decoded to wrong length")
        return CiphertextVector(tuple(parts))

    def __iter__(self) -> Iterator[CiphertextVector]:
        for i in range(len(self._starts)):
            yield self.vector(i)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise ValueError("batches only support contiguous slices")
            return self.slice(start, stop)
        return self.vector(index)

    def raw(self, i: int):
        """Record ``i``'s bytes, zero-copy."""
        return memoryview(self._buf)[self._starts[i]: self._end(i)]

    def raw_records(self):
        """The whole record buffer (for envelope/checkpoint splicing)."""
        return self._buf

    def parts_count(self, i: int) -> int:
        (nparts,) = _U32.unpack_from(self._buf, self._starts[i])
        return nparts

    # -- zero-copy structure ops ------------------------------------------

    def slice(self, i: int, j: int) -> "CiphertextBatch":
        """Records ``[i, j)`` as a view over this buffer (no copy)."""
        starts = self._starts
        n = len(starts)
        i = max(0, min(i, n))
        j = max(i, min(j, n))
        a = starts[i] if i < n else len(self._buf)
        b = starts[j] if j < n else len(self._buf)
        view = memoryview(self._buf)[a:b]
        return CiphertextBatch(self.group, view, [s - a for s in starts[i:j]])

    def split(self, beta: int) -> List["CiphertextBatch"]:
        """Divide into ``beta`` contiguous equal views (Algorithm 1,
        step 2 — identical to ``route_batches`` on an object list)."""
        n = len(self)
        if n % beta:
            raise ValueError(f"{n} items do not divide into {beta} batches")
        per = n // beta
        return [self.slice(k * per, (k + 1) * per) for k in range(beta)]

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """``u32 count || records`` — the ``_write_vectors`` layout."""
        return _U32.pack(len(self._starts)) + bytes(self._buf)

    def size_bytes_total(self) -> int:
        """Sum of ``vec.size_bytes`` over the batch, without decoding
        (the audit's bytes-sent accounting must match the object path:
        a part is 2 elements plus either Y or the 1-byte ⊥ marker)."""
        buf = self._buf
        eb = self.group.element_bytes
        total = 0
        for i in range(len(self._starts)):
            start = self._starts[i]
            end = self._end(i)
            (nparts,) = _U32.unpack_from(buf, start)
            pos = start + 4
            y_flags = 0
            for _ in range(nparts):
                pos += 2 * eb
                if buf[pos] == 1:
                    y_flags += 1
                    pos += eb
                pos += 1
            total += (end - start) - 4 - y_flags
        return total

    # -- comparison ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, CiphertextBatch):
            return (
                self._starts == other._starts
                and bytes(self._buf) == bytes(other._buf)
            )
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            return bytes(self._buf) == encode_vector_records(other)
        return NotImplemented

    __hash__ = None  # mutable

    def __repr__(self) -> str:
        return (
            f"CiphertextBatch({self.group.params.name}, "
            f"n={len(self._starts)}, {len(self._buf)} bytes)"
        )
