"""Full-deployment orchestration of an Atom round (paper §2, §4).

:class:`AtomDeployment` wires everything together:

1. **Setup** — build the fleet, form the round's groups from beacon
   randomness, place them on the permutation-network topology
   (width = number of groups; each group handles one node per layer),
   and, for the trap variant, set up the trustees.
2. **Submission** — clients pick entry groups; every server of the
   entry group verifies the EncProof NIZKs and rejects duplicates.
3. **Mixing** — T iterations of shuffle → divide → reencrypt across
   the network (Algorithm 1, with Algorithm 2 verification in the NIZK
   variant).  The final iteration re-encrypts to ``⊥``, revealing
   payloads at the exit groups.
4. **Exit** — basic/NIZK: payloads are the messages.  Trap variant:
   traps are routed to their committing entry groups and checked
   against commitments; inner ciphertexts are de-duplicated and
   counted; the trustees release the decryption key only if every
   check passes, after which the inner ciphertexts are opened.

Since the message-driven redesign the deployment no longer touches
group objects directly: every round gets a
:class:`~repro.net.coordinator.Coordinator` that drives
:class:`~repro.net.nodes.ServerNode`/``TrusteeNode`` services over a
:class:`~repro.net.transport.Transport` (``DeploymentConfig.transport``:
zero-copy in-process by default, loopback TCP for the real service
boundary).  ``submit_*`` builds the client-side submission and ships it
as a SUBMIT envelope; :class:`MixingRun` is a thin adapter that steps
the coordinator layer by layer so the stream engine's recovery hooks
keep working.  The instrumented byte counters feed the bandwidth
analysis of §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import messages as fmt
from repro.core.blame import BlameReport, identify_malicious_users
from repro.core.client import Client, Submission, TrapSubmission
from repro.core.directory import Directory, DirectoryConfig, make_fleet
from repro.core.group import GroupContext, GroupStalled, MixAudit, ProtocolAbort
from repro.core.server import AtomServer
from repro.core.trustees import TrusteeGroup
from repro.crypto.beacon import RandomnessBeacon
from repro.crypto.groups import DeterministicRng, GroupBackend as Group, get_group
from repro.crypto.vector import CiphertextVector
from repro.topology import IteratedButterflyNetwork, PermutationNetwork, SquareNetwork

VARIANTS = ("basic", "nizk", "trap")

#: Application-level marker for trap-variant dummy messages (the trap
#: variant's dummies are complete (inner, trap) pairs so they stay
#: indistinguishable in flight; the marker lets exits drop them after
#: decryption).  The random suffix added per dummy makes collisions
#: with user content vanishingly unlikely.
DUMMY_MAGIC = b"\x00__atom_dummy__\x00"


@dataclass
class DeploymentConfig:
    """Knobs for one Atom deployment."""

    num_servers: int = 8
    num_groups: int = 2
    group_size: Optional[int] = 3  # None -> derive from f/G/h (k=32 at scale)
    variant: str = "trap"
    mode: str = "anytrust"  # or "manytrust"
    h: int = 1
    adversarial_fraction: float = 0.2
    iterations: int = 4  # paper uses T=10 at scale
    message_size: int = 32
    crypto_group: str = "TOY"
    topology: str = "square"
    nizk_rounds: int = 6
    num_trustees: int = 3
    seed: bytes = b"repro.deployment"
    #: worker processes for mixing one layer's independent groups
    #: (1 = serial, the paper's horizontal-scaling claim of Fig. 7)
    parallelism: int = 1
    #: how envelopes move between nodes: "inproc" (zero-copy direct
    #: dispatch), "tcp" (each node behind a loopback asyncio socket) or
    #: "fleet" (groups hosted by separate OS processes per `fleet_plan`)
    transport: str = "inproc"
    #: path to a repro.fleet.plan.DeploymentPlan JSON; required (and
    #: only meaningful) when transport == "fleet"
    fleet_plan: Optional[str] = None
    #: how ciphertexts live between protocol steps: "batch" (contiguous
    #: CiphertextBatch buffers — the bounded-memory data plane) or
    #: "object" (legacy per-vector object lists; escape hatch and
    #: byte-equivalence baseline)
    data_plane: str = "batch"
    #: spill intake holdings to scratch disk segments every N vectors
    #: (0: never spill; requires the batch data plane)
    spill_threshold: int = 0
    #: directory for the durable state store (None: in-memory only —
    #: the no-op store, so nothing below pays for durability)
    state_dir: Optional[str] = None
    #: fsync the write-ahead log every N appends (0: only at commit
    #: points, which always sync regardless of this knob)
    wal_fsync_every: int = 8
    #: snapshot node holdings every N committed layers (1: every
    #: commit, so recovery re-mixes nothing)
    checkpoint_every: int = 1
    #: rotate the write-ahead log into a new segment file once the
    #: active one exceeds this many bytes (0: never by size)
    wal_segment_bytes: int = 8 * 1024 * 1024
    #: ... or this many records (0: never by count); tiny values are
    #: the test/smoke lever for exercising rotation on short streams
    wal_segment_records: int = 0
    #: compact once more than N sealed segments have piled up (0:
    #: never auto-compact) — the state-dir disk bound is roughly
    #: (retain + 2) * wal_segment_bytes plus the live suffix
    wal_retain_segments: int = 4
    #: wrap the transport with deadlines/retries/idempotent request ids
    #: (False restores PR 4's perfect-network behavior exactly)
    resilience: bool = True
    #: base RPC deadline in seconds (None: the stock 30 s; mixing RPCs
    #: get 4x, heartbeats get `heartbeat_timeout_s`)
    rpc_timeout: Optional[float] = None
    #: retry budget per RPC (1 = no retries)
    rpc_attempts: int = 4
    #: network fault plan spec (see repro.net.chaos), None = calm net
    net_faults: Optional[str] = None
    #: probe every group with PING before each mixing layer and surface
    #: sustained silence as GroupStalled (-> §4.5 buddy recovery)
    heartbeat: bool = False
    #: consecutive missed PONGs before a group is declared dead
    heartbeat_misses: int = 3
    #: pause between heartbeat re-probes of a silent group (seconds)
    heartbeat_grace_s: float = 0.02
    #: per-PING deadline (seconds) — deliberately tight
    heartbeat_timeout_s: float = 0.25

    def __post_init__(self) -> None:
        from repro.net.transport import TRANSPORTS

        if self.variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}")
        if self.mode == "anytrust" and self.h != 1:
            raise ValueError("anytrust deployments have h = 1")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.transport not in TRANSPORTS + ("fleet",):
            raise ValueError(
                f"transport must be one of {TRANSPORTS + ('fleet',)}"
            )
        if self.transport == "fleet" and not self.fleet_plan:
            raise ValueError(
                "transport='fleet' needs fleet_plan (a DeploymentPlan path)"
            )
        if self.data_plane not in ("batch", "object"):
            raise ValueError("data_plane must be 'batch' or 'object'")
        if self.spill_threshold < 0:
            raise ValueError("spill_threshold must be >= 0")
        if self.spill_threshold > 0 and self.data_plane == "object":
            raise ValueError(
                "spill_threshold requires the batch data plane "
                "(object holdings cannot spill)"
            )
        if self.rpc_attempts < 1:
            raise ValueError("rpc_attempts must be >= 1")
        if self.rpc_timeout is not None and self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be > 0 seconds")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if self.net_faults is not None:
            # Parse eagerly so a bad spec fails at config time (the CLI
            # surfaces it before any round state exists), and cache the
            # parsed plan for transport assembly.
            from repro.net.chaos import NetFaultPlan

            self._net_fault_plan = NetFaultPlan.parse(self.net_faults)
        else:
            self._net_fault_plan = None


class InnerPayloadForger:
    """Builds a valid trustee-encrypted filler payload for the modeled
    §4.4 attacker (substitutions only the trap mechanism can catch).

    A class (not a closure) so it pickles with its
    :class:`~repro.core.group.GroupContext` into mixing worker
    processes — the parallel path must not silently degrade the trap
    variant to the weaker garbage-forging attacker.
    """

    def __init__(self, group, trustee_public, message_size: int, payload_size: int):
        self.group = group
        self.trustee_public = trustee_public
        self.message_size = message_size
        self.payload_size = payload_size

    def __call__(self) -> bytes:
        import secrets as _secrets

        from repro.crypto.kem import cca2_encrypt

        spec = fmt.PayloadSpec.sized(self.payload_size)
        filler = spec.pad(_secrets.token_bytes(8), 4 + self.message_size)
        inner = cca2_encrypt(self.group, self.trustee_public, filler)
        return spec.build_inner(self.group, inner)


@dataclass
class RoundResult:
    """Outcome of one protocol round."""

    round_id: int
    messages: List[bytes] = field(default_factory=list)
    aborted: bool = False
    abort_reason: str = ""
    offending_groups: List[int] = field(default_factory=list)
    audits: List[MixAudit] = field(default_factory=list)
    bytes_sent_total: int = 0
    num_traps_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.aborted


class Round:
    """Mutable state of one round in flight."""

    def __init__(
        self,
        round_id: int,
        contexts: List[GroupContext],
        topology: PermutationNetwork,
        trustees: Optional[TrusteeGroup],
        payload_size: int,
    ):
        self.round_id = round_id
        self.contexts = contexts
        self.topology = topology
        self.trustees = trustees
        self.payload_size = payload_size
        #: the round's envelope-driven orchestrator (set by
        #: AtomDeployment.start_round once the nodes are registered)
        self.coordinator = None
        #: this round's attacker-payload builder (trap variant).  Kept on
        #: the Round rather than only on the shared contexts: a stream
        #: reuses one context list across rounds whose trustee keys
        #: differ, so each mixing layer re-installs its own round's
        #: forger before running (Coordinator._sync_contexts).
        self.forger: Optional[InnerPayloadForger] = None
        #: per-gid intake mirror of the node-side holdings (the nodes
        #: hold the authoritative copies behind the transport; this
        #: client-side view feeds dummy-padding targets and tests)
        self.holdings: Dict[int, List[CiphertextVector]] = {
            ctx.gid: [] for ctx in contexts
        }
        #: per-gid trap commitments registered at submission time (the
        #: same client-side mirror; nodes check traps against theirs)
        self.commitments: Dict[int, List[bytes]] = {ctx.gid: [] for ctx in contexts}
        #: user id -> (gid, trap submission) for blame
        self.trap_submissions: Dict[int, Tuple[int, TrapSubmission]] = {}
        self._next_user_id = 0

    def context(self, gid: int) -> GroupContext:
        return self.contexts[gid]


class AtomDeployment:
    """An in-process Atom network."""

    def __init__(
        self,
        config: DeploymentConfig,
        servers: Optional[Sequence[AtomServer]] = None,
        store=None,
    ):
        self.config = config
        self.group: Group = get_group(config.crypto_group)
        # The durability hook every layer below journals through.  An
        # injected store wins (recovery reopens an existing log);
        # otherwise config.state_dir selects WAL-backed vs no-op.
        if store is not None:
            self.store = store
        elif config.state_dir:
            from repro.store import DurableStore

            self.store = DurableStore(
                config.state_dir,
                self.group,
                config=config,
                fsync_every=config.wal_fsync_every,
                checkpoint_every=config.checkpoint_every,
                segment_bytes=config.wal_segment_bytes,
                segment_records=config.wal_segment_records,
                retain_segments=config.wal_retain_segments,
            )
        else:
            from repro.store import NullStore

            self.store = NullStore()
        self.servers = (
            list(servers)
            if servers is not None
            else make_fleet(config.num_servers, self.group)
        )
        self.directory = Directory(
            self.servers,
            self.group,
            beacon=RandomnessBeacon(config.seed),
            config=DirectoryConfig(
                adversarial_fraction=config.adversarial_fraction,
                h=config.h,
                mode=config.mode,
                group_size=config.group_size,
                nizk_rounds=config.nizk_rounds,
            ),
        )
        self.spec = fmt.PayloadSpec.for_deployment(
            self.group, config.message_size, trap_variant=(config.variant == "trap")
        )
        #: lazily-created mixing worker pool, reused across rounds so
        #: repeated run_round calls don't pay process startup each time
        self._pool = None
        #: lazily-created transport, shared by every round's coordinator
        #: (TCP keeps its event loop and sockets warm across a stream)
        self._transport = None
        #: lazily-created scratch directory for spill segments
        self._spill_dir: Optional[str] = None
        self._spill_tmp = False

    def spill_dir(self) -> Optional[str]:
        """Scratch directory for spill-to-disk intake segments; None
        when spilling is off.  Under ``state_dir`` when one exists
        (``<state_dir>/spill``), else a fresh temp directory.  Contents
        are scratch either way — recovery replays intake from the
        deployment WAL, never from spill files."""
        if self.config.spill_threshold <= 0:
            return None
        if self._spill_dir is None:
            if self.config.state_dir:
                from pathlib import Path

                path = Path(self.config.state_dir) / "spill"
                path.mkdir(parents=True, exist_ok=True)
                self._spill_dir = str(path)
            else:
                import tempfile

                self._spill_dir = tempfile.mkdtemp(prefix="atom-spill-")
                self._spill_tmp = True
        return self._spill_dir

    def make_holdings(self, tag: str):
        """A fresh holdings container for the configured data plane:
        a plain list (object plane), a :class:`CiphertextBatch`, or a
        :class:`SpillableHoldings` when spilling is on."""
        if self.config.data_plane != "batch":
            return []
        if self.config.spill_threshold > 0:
            from repro.store.spill import SpillableHoldings

            return SpillableHoldings(
                self.group, self.config.spill_threshold, self.spill_dir(),
                tag=tag,
            )
        from repro.core.batch import CiphertextBatch

        return CiphertextBatch(self.group)

    def _mixing_pool(self):
        if self.config.parallelism > 1 and self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.config.parallelism)
        return self._pool

    def transport(self):
        """The deployment's :class:`~repro.net.transport.Transport`.

        Assembled as a decorator chain, outermost first::

            Coordinator -> ResilientTransport -> ChaosTransport -> tcp/inproc

        Chaos sits *below* resilience so injected faults exercise the
        retry/dedup machinery exactly like a real flaky network would.
        Both wrappers draw from rngs derived from the deployment seed —
        never the protocol rng — so enabling them cannot shift a
        round's crypto.
        """
        if self._transport is None:
            from repro.net.transport import make_transport

            cfg = self.config
            if cfg.transport == "fleet":
                from repro.fleet.plan import DeploymentPlan
                from repro.fleet.transport import FleetTransport

                transport = FleetTransport(
                    self.group, DeploymentPlan.load(cfg.fleet_plan)
                )
            else:
                transport = make_transport(cfg.transport, self.group)
            if cfg._net_fault_plan is not None:
                from repro.net.chaos import ChaosTransport

                transport = ChaosTransport(
                    transport, cfg._net_fault_plan, cfg.seed + b"/chaos"
                )
            if cfg.resilience:
                from repro.net.resilience import ResilientTransport, RpcPolicy

                transport = ResilientTransport(
                    transport,
                    RpcPolicy.default(
                        base_timeout=cfg.rpc_timeout,
                        max_attempts=cfg.rpc_attempts,
                        ping_timeout=cfg.heartbeat_timeout_s,
                    ),
                    cfg.seed + b"/rpc",
                )
            self._transport = transport
        return self._transport

    def _announce_round(self, round_id: int, fresh: bool, rng) -> None:
        """Walk the transport chain and tell any fleet layer a round is
        starting (duck-typed like :meth:`revive_endpoint`; a no-op for
        purely local transports)."""
        transport = self.transport()
        while transport is not None:
            open_round = getattr(transport, "open_round", None)
            if open_round is not None:
                open_round(round_id, fresh, rng)
            transport = getattr(transport, "inner", None)

    def revive_endpoint(self, gid: int) -> None:
        """Buddy recovery re-hosted ``gid``: walk the transport chain
        and clear any chaos partition of that endpoint (the replacement
        group comes up at a fresh, reachable address)."""
        transport = self._transport
        while transport is not None:
            revive = getattr(transport, "revive", None)
            if revive is not None:
                revive(gid)
            transport = getattr(transport, "inner", None)

    def close(self) -> None:
        """Shut down the mixing worker pool and the transport, and
        flush (but keep open) the state store."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        if self._spill_dir is not None:
            # Spill segments are scratch: recovery never reads them.
            import shutil

            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._spill_tmp = False
        self.store.flush()

    def __enter__(self) -> "AtomDeployment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        # The context manager owns the state-dir lifecycle: a clean
        # exit leaves a shutdown marker so the next start in the same
        # state dir never replays; a crash (or an exception propagating
        # out of the with-block) leaves the log replayable.
        if exc_type is None:
            self.store.mark_clean()
        self.store.close()

    # -- round lifecycle ---------------------------------------------------

    def start_round(
        self,
        round_id: int = 0,
        rng: Optional[DeterministicRng] = None,
        contexts: Optional[List[GroupContext]] = None,
    ) -> Round:
        """Form groups, build the topology, and (trap variant) trustees.

        Passing ``contexts`` reuses existing groups — their keys, DVSS
        shares, and warm fastexp tables — instead of forming fresh ones.
        The stream engine (:mod:`repro.core.pipeline`) uses this to run
        many consecutive rounds without per-round group setup; trustees
        are still fresh per round (their key is released or deleted at
        every exit).
        """
        cfg = self.config
        # Journal the rng state *before* the first draw: recovery seeks
        # back here and re-forms identical contexts/trustees instead of
        # persisting secret keys.
        self.store.round_setup(round_id, rng, fresh=contexts is None)
        # Fleet processes derive this round's contexts from the same
        # pre-draw rng mark the store journals: announce it before the
        # first draw so remote and local formation are byte-identical.
        self._announce_round(round_id, fresh=contexts is None, rng=rng)
        if contexts is None:
            contexts = self.directory.form_groups(round_id, cfg.num_groups, rng)
        if cfg.topology == "square":
            topology = SquareNetwork(width=cfg.num_groups, depth=cfg.iterations)
        elif cfg.topology == "butterfly":
            log_width = (cfg.num_groups - 1).bit_length()
            if 2 ** log_width != cfg.num_groups:
                raise ValueError("butterfly topology needs a power-of-two group count")
            topology = IteratedButterflyNetwork(log_width=log_width)
        else:
            raise ValueError(f"unknown topology {cfg.topology!r}")
        trustees = (
            TrusteeGroup(self.group, cfg.num_trustees, rng=rng)
            if cfg.variant == "trap"
            else None
        )
        rnd = Round(round_id, contexts, topology, trustees, self.spec.payload_size)
        if cfg.data_plane == "batch":
            # The client-side intake mirror tracks the nodes' containers:
            # serialized batch buffers (spillable when configured), so a
            # million-message intake never pins an object graph here
            # either.  Tags differ from the node containers' so their
            # scratch files never collide.
            rnd.holdings = {
                ctx.gid: self.make_holdings(f"mirror-r{round_id}-g{ctx.gid}")
                for ctx in contexts
            }
        if trustees is not None:
            # Arm the strongest modeled attacker: substituted ciphertexts
            # are *valid* inner ciphertexts to the trustees (so only the
            # trap mechanism can catch the substitution — §4.4 analysis).
            rnd.forger = InnerPayloadForger(
                self.group, trustees.public_key, cfg.message_size, self.spec.payload_size
            )
            for ctx in contexts:
                ctx.forge_payload_fn = rnd.forger
        from repro.net.coordinator import Coordinator

        rnd.coordinator = Coordinator(self, rnd, self.transport())
        return rnd

    def messages_per_group(self, num_users: int) -> int:
        """Entry-load per group, counting trap doubling."""
        per_user = 2 if self.config.variant == "trap" else 1
        total = num_users * per_user
        if total % self.config.num_groups:
            raise ValueError("users must spread evenly over entry groups")
        return total // self.config.num_groups

    def required_user_multiple(self) -> int:
        """Smallest user count unit keeping every division exact.

        Each group's entry load must divide by beta at every iteration;
        with width ``G`` (square: beta = G) that means the per-group
        load must be a multiple of ``G`` — i.e. the total user count a
        multiple of ``G^2`` (or ``G^2 / 2`` with trap doubling).
        """
        g = self.config.num_groups
        beta = g if self.config.topology == "square" else 2
        per_user = 2 if self.config.variant == "trap" else 1
        unit = g * beta
        # smallest u with u * per_user divisible by unit
        from math import gcd

        return unit // gcd(unit, per_user)

    # -- submission -----------------------------------------------------------

    def submit_plain(
        self, rnd: Round, message: bytes, entry_gid: int, client: Optional[Client] = None
    ) -> int:
        """Basic/NIZK-variant submission; returns the user id."""
        if self.config.variant == "trap":
            raise ValueError("use submit_trap for the trap variant")
        client = client or Client(self.group)
        ctx = rnd.context(entry_gid)
        submission = client.prepare_plain(
            message, ctx.public_key, entry_gid, self.spec.payload_size
        )
        return self._accept(rnd, entry_gid, [submission], None)

    def submit_trap(
        self, rnd: Round, message: bytes, entry_gid: int, client: Optional[Client] = None
    ) -> int:
        """Trap-variant submission (inner + trap + commitment)."""
        if self.config.variant != "trap":
            raise ValueError("submit_trap requires the trap variant")
        client = client or Client(self.group)
        ctx = rnd.context(entry_gid)
        trap_sub, _ = client.prepare_trap_pair(
            message,
            ctx.public_key,
            rnd.trustees.public_key,
            entry_gid,
            self.spec.payload_size,
            self.config.message_size,
        )
        if not trap_sub.verify(self.group, ctx.public_key):
            raise ValueError("submission proofs failed verification")
        user_id = self._accept(
            rnd, entry_gid, list(trap_sub.pair), trap_sub.trap_commitment
        )
        rnd.trap_submissions[user_id] = (entry_gid, trap_sub)
        return user_id

    def inject_trap_submission(
        self, rnd: Round, entry_gid: int, trap_sub: TrapSubmission
    ) -> int:
        """Submit a pre-built (possibly malicious) trap submission —
        used by tests exercising §4.6 blame."""
        ctx = rnd.context(entry_gid)
        if not trap_sub.verify(self.group, ctx.public_key):
            raise ValueError("submission proofs failed verification")
        user_id = self._accept(
            rnd, entry_gid, list(trap_sub.pair), trap_sub.trap_commitment
        )
        rnd.trap_submissions[user_id] = (entry_gid, trap_sub)
        return user_id

    def _accept(
        self,
        rnd: Round,
        gid: int,
        submissions: List[Submission],
        trap_commitment: Optional[bytes],
    ) -> int:
        """Ship the submission(s) to the entry group's node as a SUBMIT
        envelope; the node verifies the EncProofs and rejects exact
        duplicates (raised here as ``ValueError`` with its reason).
        """
        from repro.net import envelopes as ev

        if trap_commitment is not None:
            payload = ev.SubmitTrap(
                TrapSubmission(
                    pair=(submissions[0], submissions[1]),
                    trap_commitment=trap_commitment,
                    gid=gid,
                )
            )
        else:
            payload = ev.SubmitPlain(gid=gid, submission=submissions[0])
        rnd.coordinator.submit(payload, gid)
        # Client-side mirror: padding targets and tests read these.
        for submission in submissions:
            rnd.holdings[gid].append(submission.vector)
        if trap_commitment is not None:
            rnd.commitments[gid].append(trap_commitment)
        user_id = rnd._next_user_id
        rnd._next_user_id += 1
        return user_id

    # -- dummy padding (§3) -------------------------------------------------

    def pad_round(self, rnd: Round, rng: Optional[DeterministicRng] = None) -> int:
        """Top entry groups up with cover dummies until every group's
        load is equal and divides evenly at every iteration (§3: "adding
        a small constant fraction of dummy messages ... lets us use this
        network as if it produced a truly random permutation").

        Returns the number of dummy payloads added.
        """
        import secrets as _secrets
        from math import gcd

        cfg = self.config
        beta = rnd.topology.beta
        counts = {gid: len(v) for gid, v in rnd.holdings.items()}
        per_user = 2 if cfg.variant == "trap" else 1
        target = max(counts.values()) if counts else 0
        # round the target up to a multiple of beta (and of the pair
        # size, so trap dummies fit evenly)
        unit = beta * per_user // gcd(beta, per_user)
        target = -(-max(target, 1) // unit) * unit

        added = 0
        client = Client(self.group, rng)
        for gid in sorted(rnd.holdings):
            while len(rnd.holdings[gid]) < target:
                if cfg.variant == "trap":
                    filler = DUMMY_MAGIC + _secrets.token_bytes(4)
                    self.submit_trap(rnd, filler[: cfg.message_size], gid, client)
                else:
                    nonce = (
                        rng.randbytes(12) if rng is not None else _secrets.token_bytes(12)
                    )
                    payload = self.spec.build_dummy(nonce)
                    submission = client._submit_payload(
                        payload, rnd.context(gid).public_key, gid
                    )
                    self._accept(rnd, gid, [submission], None)
                added += 1
        return added

    # -- mixing ------------------------------------------------------------------

    def begin_mixing(
        self, rnd: Round, rng: Optional[DeterministicRng] = None
    ) -> "MixingRun":
        """Start the T mixing iterations as a stepwise :class:`MixingRun`.

        The stream engine drives the run layer by layer so fault events
        can fire and next-round intake can interleave between layers;
        :meth:`run_round` drives it straight through.
        """
        return MixingRun(self, rnd, rng)

    def run_round(self, rnd: Round, rng: Optional[DeterministicRng] = None) -> RoundResult:
        """Execute T mixing iterations and the exit protocol."""
        run = self.begin_mixing(rnd, rng)
        try:
            while not run.done:
                run.run_layer()
        except (ProtocolAbort, GroupStalled) as failure:
            return run.abort(failure)
        return run.finish()

    # -- blame -----------------------------------------------------------------------

    def blame(self, rnd: Round) -> BlameReport:
        """Run §4.6 malicious-user identification after an aborted round."""
        return identify_malicious_users(rnd.contexts, rnd.trap_submissions)


class MixingRun:
    """Stepwise driver of one round's T mixing iterations.

    A thin adapter over the round's
    :class:`~repro.net.coordinator.Coordinator`: one :meth:`run_layer`
    call mixes one layer of the permutation network over envelopes.
    Node holdings advance only when a layer commits, so a layer that
    raises :class:`GroupStalled` leaves every node untouched — the
    caller can recover the stalled group through its buddies (§4.5),
    swap the restored context into ``rnd.contexts``, and call
    :meth:`run_layer` again to retry the same layer (the coordinator
    re-syncs node contexts at every layer start).  After the final
    layer, :meth:`finish` runs the exit protocol.
    """

    def __init__(
        self,
        deployment: AtomDeployment,
        rnd: Round,
        rng: Optional[DeterministicRng] = None,
    ):
        counts = rnd.coordinator.intake_counts()
        if len(set(counts.values())) > 1:
            raise ValueError(f"unbalanced entry load: {counts}")
        self.deployment = deployment
        self.rnd = rnd
        self.rng = rng
        self.coordinator = rnd.coordinator
        self.coordinator.rng = rng
        self.result = self.coordinator.result

    @property
    def layer(self) -> int:
        return self.coordinator.layer

    @property
    def done(self) -> bool:
        return self.coordinator.done

    @property
    def remaining_layers(self) -> int:
        return self.coordinator.remaining_layers

    def run_layer(self) -> None:
        """Mix one layer across all groups (Algorithm 1/2).

        Raises :class:`ProtocolAbort` or :class:`GroupStalled` without
        advancing state; audits and holdings commit only on success.
        Tamper budgets spent inside a failed layer are restored too —
        the layer's outputs are discarded, so a tampering that happened
        in them must not silently count as used.  (Budget bookkeeping
        is control-plane test instrumentation: node objects share this
        process even under the TCP transport.)
        """
        budgets = [
            (server, server.tamper_budget)
            for ctx in self.rnd.contexts
            for server in ctx.servers
            if server.is_malicious
        ]
        try:
            self.coordinator.run_layer()
        except (ProtocolAbort, GroupStalled):
            for server, budget in budgets:
                server.tamper_budget = budget
            raise

    def abort(self, failure: RuntimeError) -> RoundResult:
        """Record an unrecovered :class:`ProtocolAbort`/:class:`GroupStalled`."""
        return self.coordinator.abort(failure)

    def finish(self) -> RoundResult:
        """Run the exit protocol over the fully mixed holdings."""
        return self.coordinator.finish()
