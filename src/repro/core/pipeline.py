"""Multi-round pipelined deployment engine with live churn (§4.5–§4.7).

The paper's headline result is sustained *streams* of rounds, and its
robustness story only matters when failures hit a running deployment.
:class:`StreamEngine` runs N consecutive rounds over one persistent
:class:`~repro.core.protocol.AtomDeployment`:

- **Key and cache reuse** — the round's group contexts (and with them
  the DVSS shares, group keys, and warm fastexp tables) are formed once
  and reused for every round of the stream; only the trustee key is
  per-round (it is released or deleted at every exit).  Buddy escrows
  (§4.5) are set up once at stream start, cyclically: group ``g``
  escrows its member shares with group ``(g+1) mod G``.
- **Pipelined intake** — submission intake for round ``r+1`` is
  interleaved with the mixing of round ``r``: after each mixing layer
  the engine verifies a slice of the next round's pending submissions,
  so intake cost rides inside the mixing window (§4.7's pipelining,
  realized cooperatively on one core; with dedicated cores the same
  schedule overlaps in wall clock — see ``sim/pipeline.py``).
- **Live churn** — a declarative :class:`FaultSchedule` fires fail-stop,
  recovery, tampering, and malicious-user events at round/iteration
  granularity.  A group that stalls beyond ``h-1`` losses mid-layer is
  restored from buddy escrows with fresh replacement servers — same
  group key, no rekeying — and the layer retries (§4.5, end to end).
- **Blame and retry** — an aborted trap round runs §4.6 identification;
  the engine then *rekeys* the compromised entry groups (blame reveals
  their per-round keys, which a stream would otherwise keep using),
  re-escrows, and retries the round with the honest submissions, so
  honest users' messages survive disruption.

Fault-schedule grammar (also accepted by ``repro.cli run-stream``)::

    spec    := event (';' event)*
    event   := 'r' ROUND ['.i' ITER] ':' action
    action  := 'fail:' SERVER_ID
             | 'recover:' SERVER_ID
             | 'fail-group:' GID ':' COUNT
             | 'tamper:' SERVER_ID ':' BEHAVIOR
             | 'tamper-group:' GID ':' POSITION ':' BEHAVIOR
             | 'user:' ATTACK '@' GID

``BEHAVIOR`` is a :class:`~repro.core.server.Behavior` value
(``replace_one``, ``drop_one``, ``duplicate_one``, ``bad_shuffle``);
``ATTACK`` is one of ``bad_commitment``, ``duplicate_inner``,
``two_traps``.  Events without ``.i`` fire before the round's first
layer; ``.i`` fires before that mixing iteration.  User attacks are
injected during the round's intake.  Example::

    r2.i1:fail-group:0:2;r5:tamper-group:1:0:replace_one;r8:user:duplicate_inner@1
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import messages as fmt
from repro.core.client import Client, TrapSubmission
from repro.core.faults import BuddySystem
from repro.core.group import GroupStalled, ProtocolAbort
from repro.core.protocol import AtomDeployment, DeploymentConfig, Round, RoundResult
from repro.core.server import AtomServer, Behavior
from repro.crypto.commit import commit
from repro.crypto.groups import DeterministicRng
from repro.crypto.kem import cca2_encrypt
from repro.topology import IteratedButterflyNetwork, SquareNetwork

USER_ATTACKS = ("bad_commitment", "duplicate_inner", "two_traps")

SERVER_ACTIONS = ("fail", "recover", "fail-group", "tamper", "tamper-group")


class FaultScheduleError(ValueError):
    """A fault-schedule spec could not be parsed or applied."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fired at (round, iteration) granularity."""

    round: int
    action: str  # one of SERVER_ACTIONS or "user"
    target: int  # server id (fail/recover/tamper) or gid (group/user events)
    iteration: Optional[int] = None  # None: before the round's first layer
    count: int = 1  # fail-group: members to kill
    position: int = 0  # tamper-group: member position
    behavior: Optional[Behavior] = None  # tamper / tamper-group
    attack: str = ""  # user events

    def describe(self) -> str:
        where = f"r{self.round}" + (
            f".i{self.iteration}" if self.iteration is not None else ""
        )
        if self.action == "fail-group":
            return f"{where}:fail-group:{self.target}:{self.count}"
        if self.action == "tamper":
            return f"{where}:tamper:{self.target}:{self.behavior.value}"
        if self.action == "tamper-group":
            return (
                f"{where}:tamper-group:{self.target}:{self.position}"
                f":{self.behavior.value}"
            )
        if self.action == "user":
            return f"{where}:user:{self.attack}@{self.target}"
        return f"{where}:{self.action}:{self.target}"


@dataclass
class FaultSchedule:
    """A declarative set of :class:`FaultEvent`, queryable by the engine."""

    events: List[FaultEvent] = field(default_factory=list)

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse the grammar documented in the module docstring."""
        events: List[FaultEvent] = []
        for chunk in filter(None, (part.strip() for part in spec.split(";"))):
            events.append(cls._parse_event(chunk))
        return cls(events)

    @staticmethod
    def _parse_event(chunk: str) -> FaultEvent:
        try:
            where, action_spec = chunk.split(":", 1)
            if not where.startswith("r"):
                raise ValueError("event must start with 'r<round>'")
            if ".i" in where:
                round_part, iter_part = where[1:].split(".i")
                rnum, iteration = int(round_part), int(iter_part)
            else:
                rnum, iteration = int(where[1:]), None
            parts = action_spec.split(":")
            action = parts[0]
            if action in ("fail", "recover"):
                return FaultEvent(rnum, action, int(parts[1]), iteration)
            if action == "fail-group":
                return FaultEvent(
                    rnum, action, int(parts[1]), iteration, count=int(parts[2])
                )
            if action == "tamper":
                return FaultEvent(
                    rnum, action, int(parts[1]), iteration,
                    behavior=Behavior(parts[2]),
                )
            if action == "tamper-group":
                return FaultEvent(
                    rnum, action, int(parts[1]), iteration,
                    position=int(parts[2]), behavior=Behavior(parts[3]),
                )
            if action == "user":
                attack, gid = parts[1].split("@")
                if attack not in USER_ATTACKS:
                    raise ValueError(f"unknown user attack {attack!r}")
                return FaultEvent(rnum, action, int(gid), iteration, attack=attack)
            raise ValueError(f"unknown action {action!r}")
        except FaultScheduleError:
            raise
        except (ValueError, IndexError) as exc:
            raise FaultScheduleError(f"bad fault event {chunk!r}: {exc}") from exc

    def server_events(self, round_id: int, iteration: Optional[int]) -> List[FaultEvent]:
        return [
            ev
            for ev in self.events
            if ev.action != "user"
            and ev.round == round_id
            and ev.iteration == iteration
        ]

    def user_events(self, round_id: int) -> List[FaultEvent]:
        return [
            ev for ev in self.events if ev.action == "user" and ev.round == round_id
        ]

    def has_user_events(self) -> bool:
        return any(ev.action == "user" for ev in self.events)


@dataclass
class StreamConfig:
    """Knobs for one stream run."""

    rounds: int = 5
    users_per_round: int = 4
    seed: bytes = b"repro.stream"
    #: interleave next-round intake with mixing (the §4.7 pipeline);
    #: False drains each round's intake strictly between rounds — the
    #: serial baseline for the sim/pipeline.py reconciliation
    overlap_intake: bool = True
    #: rerun an aborted round (minus blamed users) once
    retry_aborted: bool = True
    #: after blame reveals entry-group keys, form fresh groups before the
    #: retry (the stream's keys are epoch-persistent, so revealed keys
    #: would otherwise decrypt later rounds' submissions)
    rekey_after_blame: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("a stream needs at least one round")
        if self.users_per_round < 1:
            raise ValueError("users_per_round must be >= 1")


@dataclass
class RoundStats:
    """Timing and outcome of one stream round (wall clock, seconds)."""

    round_id: int
    ok: bool = False
    attempts: int = 1
    messages: List[bytes] = field(default_factory=list)
    abort_reasons: List[str] = field(default_factory=list)
    recovered_gids: List[int] = field(default_factory=list)
    blamed_users: Tuple[int, ...] = ()
    rekeyed: bool = False
    #: honest per-sender submissions this round (one per arrival, NOT
    #: per ciphertext: the trap variant holds 2 ciphertexts per sender
    #: and the batch plane stores them as one contiguous buffer, so
    #: ``len(holdings)`` alone cannot recover the sender count) — the
    #: scenario layer's conservation checks read this
    submitted: int = 0
    #: cover dummies padded in by ``pad_round`` for the delivered
    #: attempt (discarded at exit, so never part of ``messages``)
    dummies: int = 0
    #: accumulated intake work (submission build + NIZK verification)
    intake_s: float = 0.0
    #: of which, executed while the *previous* round was mixing
    overlap_s: float = 0.0
    #: time spent inside this round's mix window on the next round's
    #: intake (the other side of the same overlap)
    foreign_intake_s: float = 0.0
    #: accumulated mix windows, including interleaved next-round intake
    #: (a retried round adds its retry attempt's window too)
    mix_wall_s: float = 0.0

    @property
    def pure_mix_s(self) -> float:
        """Mix windows minus the next round's interleaved intake."""
        return max(0.0, self.mix_wall_s - self.foreign_intake_s)


@dataclass
class StreamReport:
    """Outcome of a whole stream run."""

    rounds: List[RoundStats] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(stats.ok for stats in self.rounds)

    @property
    def total_messages(self) -> int:
        return sum(len(stats.messages) for stats in self.rounds)

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.total_messages / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def total_recoveries(self) -> int:
        return sum(len(stats.recovered_gids) for stats in self.rounds)

    @property
    def total_blames(self) -> int:
        return sum(1 for stats in self.rounds if stats.blamed_users)

    def overlapped_rounds(self) -> List[RoundStats]:
        """Rounds whose intake measurably rode inside the previous mix."""
        return [stats for stats in self.rounds if stats.overlap_s > 0]

    def format_table(self) -> str:
        """Per-round wall-clock report for the CLI."""
        lines = [
            "round  intake_ms  mix_ms  overlap_ms  msgs  status  events"
        ]
        for s in self.rounds:
            events = []
            if s.recovered_gids:
                events.append(
                    "recovered=" + ",".join(f"g{g}" for g in s.recovered_gids)
                )
            if s.blamed_users:
                events.append("blamed=" + ",".join(map(str, s.blamed_users)))
            if s.rekeyed:
                events.append("rekeyed")
            if s.attempts > 1:
                events.append(f"retries={s.attempts - 1}")
            status = "ok" if s.ok else "ABORT"
            lines.append(
                f"{s.round_id:5d}  {s.intake_s * 1e3:9.1f}  "
                f"{s.pure_mix_s * 1e3:6.1f}  {s.overlap_s * 1e3:10.1f}  "
                f"{len(s.messages):4d}  {status:6s}  {' '.join(events) or '-'}"
            )
        overlapped = len(self.overlapped_rounds())
        lines.append(
            f"stream: {len(self.rounds)} rounds, {self.total_messages} msgs, "
            f"{self.wall_s:.2f}s wall, {self.throughput_msgs_per_s:.1f} msgs/s, "
            f"{overlapped} rounds with intake overlapped, "
            f"{self.total_recoveries} recoveries, {self.total_blames} blames"
        )
        return "\n".join(lines)


class StreamEngine:
    """Persistent multi-round deployment lifecycle (see module docstring)."""

    def __init__(
        self,
        config: DeploymentConfig,
        schedule: Optional[FaultSchedule] = None,
        stream: Optional[StreamConfig] = None,
        message_fn: Optional[Callable[[int, int], bytes]] = None,
        arrivals_fn: Optional[Callable[[int], List[Tuple[bytes, int]]]] = None,
    ):
        self.schedule = schedule or FaultSchedule()
        self.stream = stream or StreamConfig()
        if self.schedule.has_user_events() and config.variant != "trap":
            raise FaultScheduleError(
                "user attacks need the trap variant (they abuse trap submissions)"
            )
        self._validate_schedule(config)
        self.deployment = AtomDeployment(config)
        self.message_fn = message_fn
        #: round_id -> [(message, entry_gid), ...]: a per-round workload
        #: source (the scenario engine's traffic models plug in here);
        #: when set it replaces the fixed ``users_per_round`` schedule.
        #: MUST be deterministic per round_id — a blame-rekey re-plans
        #: the pipelined next round from scratch, and the replayed
        #: arrivals must match the discarded ones.
        self.arrivals_fn = arrivals_fn
        self.rng = DeterministicRng(self.stream.seed)
        self.client = Client(self.deployment.group, self.rng)
        self.buddies = BuddySystem(self.deployment.group)
        self.contexts: Optional[List] = None
        #: id -> server, covering the fleet plus spawned replacements
        self._registry: Dict[int, AtomServer] = {
            s.server_id: s for s in self.deployment.servers
        }
        self._next_spare_id = max(self._registry) + 1
        #: per round: honest (message, gid) pairs kept for abort retries
        self._honest: Dict[int, List[Tuple[bytes, int]]] = {}
        #: per round: user ids injected by scheduled user attacks
        self._malicious_uids: Dict[int, List[int]] = {}
        #: called with the settled round id after its endpoints are
        #: released — the hook fleet rolling restarts run between
        #: rounds (the stream keeps progressing across the restart)
        self.on_round_settled: Optional[Callable[[int], None]] = None

    def close(self) -> None:
        """Release the deployment's pool and transport (the state
        store is flushed but stays open until ``__exit__``)."""
        self.deployment.close()

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Delegate state-dir lifecycle to the deployment's context
        # exit: flush, and on a *clean* exit a shutdown marker so the
        # next start in this state dir never replays.
        self.deployment.__exit__(exc_type, exc, tb)

    def _validate_schedule(self, config: DeploymentConfig) -> None:
        """Reject events that can never apply, before the stream starts.

        Events scheduled past the stream's last round are allowed (a
        schedule is reusable across stream lengths); events addressing
        groups, member positions, or mixing iterations outside the
        deployment are not.
        """
        # The same (crypto-free) topology objects start_round builds, so
        # the layer count can never drift from the real one.
        if config.topology == "square":
            depth = SquareNetwork(
                width=config.num_groups, depth=config.iterations
            ).depth
        else:
            log_width = (config.num_groups - 1).bit_length()
            depth = (
                IteratedButterflyNetwork(log_width=log_width).depth
                if 2 ** log_width == config.num_groups
                else None  # start_round rejects the config itself
            )
        for ev in self.schedule.events:
            if (
                ev.iteration is not None
                and depth is not None
                and not 0 <= ev.iteration < depth
            ):
                raise FaultScheduleError(
                    f"{ev.describe()} targets mixing iteration "
                    f"{ev.iteration}; this topology has {depth} layers"
                )
            if ev.action in ("fail-group", "tamper-group", "user"):
                if not 0 <= ev.target < config.num_groups:
                    raise FaultScheduleError(
                        f"{ev.describe()} targets group {ev.target}; the "
                        f"deployment has {config.num_groups} groups"
                    )
            if (
                ev.action == "tamper-group"
                and config.group_size is not None
                and not 0 <= ev.position < config.group_size
            ):
                raise FaultScheduleError(
                    f"{ev.describe()} targets member position {ev.position}; "
                    f"groups have {config.group_size} members"
                )

    # -- setup -------------------------------------------------------------

    def _establish_contexts(self, round_id: int) -> Round:
        """(Re)form groups, then (many-trust) escrow each to its buddy."""
        rnd = self.deployment.start_round(round_id, rng=self.rng)
        self.contexts = rnd.contexts
        cfg = self.deployment.config
        if cfg.mode == "manytrust" and cfg.num_groups >= 2:
            num = cfg.num_groups
            for gid in range(num):
                self.buddies.drop_escrows(gid)  # stale escrows of a prior epoch
                self.buddies.escrow(
                    rnd.contexts[gid], rnd.contexts[(gid + 1) % num], self.rng
                )
        return rnd

    def _new_round(self, round_id: int) -> Round:
        if self.contexts is None:
            return self._establish_contexts(round_id)
        return self.deployment.start_round(
            round_id, rng=self.rng, contexts=self.contexts
        )

    def _spawn_spare(self) -> AtomServer:
        server = AtomServer(
            server_id=self._next_spare_id, group=self.deployment.group
        )
        self._next_spare_id += 1
        self._registry[server.server_id] = server
        return server

    # -- intake ------------------------------------------------------------

    def _plan_intake(self, round_id: int) -> List[Tuple[str, object, int]]:
        """The round's pending intake work: honest users, scheduled user
        attacks, then dummy padding (which must come last)."""
        cfg = self.deployment.config
        plan: List[Tuple[str, object, int]] = []
        if self.arrivals_fn is not None:
            for message, gid in self.arrivals_fn(round_id):
                plan.append(("honest", message, gid))
        else:
            for i in range(self.stream.users_per_round):
                message = self._message(round_id, i)
                plan.append(("honest", message, i % cfg.num_groups))
        for ev in self.schedule.user_events(round_id):
            plan.append(("attack", ev.attack, ev.target))
        plan.append(("pad", None, 0))
        return plan

    def _message(self, round_id: int, user_index: int) -> bytes:
        if self.message_fn is not None:
            return self.message_fn(round_id, user_index)
        size = self.deployment.config.message_size
        return f"r{round_id}u{user_index}".encode()[:size]

    def _execute_intake(
        self, rnd: Round, stats: RoundStats, item: Tuple[str, object, int]
    ) -> float:
        """Run one intake unit; returns its wall-clock duration."""
        started = time.monotonic()
        kind, payload, gid = item
        dep = self.deployment
        if kind == "honest":
            message = payload
            if dep.config.variant == "trap":
                dep.submit_trap(rnd, message, gid, self.client)
            else:
                dep.submit_plain(rnd, message, gid, self.client)
            self._honest.setdefault(rnd.round_id, []).append((message, gid))
            stats.submitted += 1
            # Journaled store-side too: an abort retry after a resume
            # needs the honest (message, gid) registry, which the
            # encrypted intake envelopes alone cannot yield.
            dep.store.honest_intake(rnd.round_id, gid, message)
        elif kind == "attack":
            uids = self._inject_user_attack(rnd, payload, gid)
            self._malicious_uids.setdefault(rnd.round_id, []).extend(uids)
        else:  # pad
            stats.dummies += dep.pad_round(rnd, self.rng)
        elapsed = time.monotonic() - started
        stats.intake_s += elapsed
        return elapsed

    def _drain_intake(
        self, rnd: Round, stats: RoundStats, plan: List[Tuple[str, object, int]]
    ) -> None:
        while plan:
            self._execute_intake(rnd, stats, plan.pop(0))

    # -- scheduled adversaries ---------------------------------------------

    def _inject_user_attack(self, rnd: Round, attack: str, gid: int) -> List[int]:
        """Build and submit the scheduled §4.6 trap violations."""
        dep = self.deployment
        ctx = rnd.context(gid)
        spec = dep.spec
        msg_size = dep.config.message_size
        if attack == "bad_commitment":
            sub, _ = self.client.prepare_trap_pair(
                b"evil", ctx.public_key, rnd.trustees.public_key,
                gid, spec.payload_size, msg_size,
            )
            corrupted = TrapSubmission(
                pair=sub.pair, trap_commitment=commit(b"not-the-trap"), gid=gid
            )
            return [dep.inject_trap_submission(rnd, gid, corrupted)]
        if attack == "two_traps":
            payloads = [
                spec.build_trap(gid, self.rng.randbytes(fmt.TRAP_NONCE_BYTES))
                for _ in range(2)
            ]
            subs = tuple(
                self.client._submit_payload(p, ctx.public_key, gid) for p in payloads
            )
            malicious = TrapSubmission(
                pair=subs, trap_commitment=commit(payloads[0]), gid=gid
            )
            return [dep.inject_trap_submission(rnd, gid, malicious)]
        if attack == "duplicate_inner":
            # A double-write: two sybil users share one inner ciphertext,
            # so the exit's global de-duplication (and §4.6 blame) must
            # name both.
            padded = spec.pad(b"double-write", 4 + msg_size)
            inner = cca2_encrypt(
                dep.group, rnd.trustees.public_key, padded, self.rng
            )
            inner_payload = spec.build_inner(dep.group, inner)
            uids = []
            for _ in range(2):
                trap_payload = spec.build_trap(
                    gid, self.rng.randbytes(fmt.TRAP_NONCE_BYTES)
                )
                sub_inner = self.client._submit_payload(
                    inner_payload, ctx.public_key, gid
                )
                sub_trap = self.client._submit_payload(
                    trap_payload, ctx.public_key, gid
                )
                sybil = TrapSubmission(
                    pair=(sub_inner, sub_trap),
                    trap_commitment=commit(trap_payload),
                    gid=gid,
                )
                uids.append(dep.inject_trap_submission(rnd, gid, sybil))
            return uids
        raise FaultScheduleError(f"unknown user attack {attack!r}")

    def _reset_behaviors(self) -> None:
        """Tamper events are per-round: disarm before applying a round's."""
        for server in self._registry.values():
            server.behavior = Behavior.HONEST

    def _server_by_id(self, ev: FaultEvent) -> AtomServer:
        try:
            return self._registry[ev.target]
        except KeyError:
            raise FaultScheduleError(
                f"{ev.describe()} targets unknown server {ev.target}"
            ) from None

    def _apply_server_events(self, rnd: Round, iteration: Optional[int]) -> None:
        for ev in self.schedule.server_events(rnd.round_id, iteration):
            if ev.action == "fail":
                self._server_by_id(ev).fail()
            elif ev.action == "recover":
                self._server_by_id(ev).recover()
            elif ev.action == "fail-group":
                alive = [s for s in rnd.context(ev.target).servers if not s.failed]
                for server in alive[: ev.count]:
                    server.fail()
            elif ev.action in ("tamper", "tamper-group"):
                if ev.action == "tamper":
                    server = self._server_by_id(ev)
                else:
                    ctx = rnd.context(ev.target)
                    if not 0 <= ev.position < len(ctx.servers):
                        # auto-sized groups: only checkable once live
                        raise FaultScheduleError(
                            f"{ev.describe()} targets member position "
                            f"{ev.position}; group {ev.target} has "
                            f"{len(ctx.servers)} members"
                        )
                    server = ctx.servers[ev.position]
                server.behavior = ev.behavior
                server.tamper_budget = 1

    # -- recovery ----------------------------------------------------------

    def _recover_group(self, rnd: Round, stalled: GroupStalled,
                       stats: RoundStats) -> None:
        """§4.5 buddy recovery: restore the stalled group mid-stream.

        The restored context keeps the original group key, so the stream
        resumes without rekeying; the mutation of ``rnd.contexts`` is
        shared with every later round of the stream (one context list).
        """
        gid = stalled.gid
        escrows = self.buddies.escrows_for(gid)
        if not escrows:
            raise RuntimeError(
                f"stream stalled: group {gid} lost quorum and has no buddy "
                f"escrow ({stalled})"
            )
        ctx = rnd.context(gid)
        buddy_ctx = rnd.context(escrows[0].buddy_gid)
        buddy_alive = [
            j for j, server in enumerate(buddy_ctx.servers) if not server.failed
        ]
        replacements = [self._spawn_spare() for _ in ctx.servers]
        try:
            restored = self.buddies.recover(
                ctx, replacements, buddy_alive=buddy_alive
            )
        except GroupStalled as buddy_short:
            raise RuntimeError(
                f"stream stalled: group {gid} lost quorum and its buddy "
                f"group {buddy_ctx.gid} has only {len(buddy_alive)} live "
                f"members (escrow threshold {buddy_ctx.threshold})"
            ) from buddy_short
        rnd.contexts[gid] = restored
        stats.recovered_gids.append(gid)
        # The replacement group answers at a fresh endpoint: lift any
        # chaos-layer partition of the old (dead) one.
        self.deployment.revive_endpoint(gid)
        if rnd.coordinator is not None:
            # Fleet-homed group whose process died: host the restored
            # group in-coordinator for the rest of the round.
            rnd.coordinator.rehome_group(gid)

    # -- the stream --------------------------------------------------------

    def run(self, message_fn: Optional[Callable[[int, int], bytes]] = None
            ) -> StreamReport:
        """Run the configured number of rounds; returns the report."""
        if message_fn is not None:
            self.message_fn = message_fn
        report = StreamReport()
        started = time.monotonic()
        self.deployment.store.stream_begin(self.stream, self.schedule_spec())

        try:
            rnd = self._new_round(0)
            stats = RoundStats(0)
            self._drain_intake(rnd, stats, self._plan_intake(0))
            self._stream_loop(report, rnd, stats, first=0, resumed=False)
        finally:
            self.deployment.close()

        report.wall_s = time.monotonic() - started
        return report

    def resume_run(self, report: StreamReport, rnd: Round, stats: RoundStats,
                   first: int) -> StreamReport:
        """Continue an interrupted stream from recovered state.

        Called by :class:`repro.store.recovery.RecoveryManager` with
        ``report`` pre-filled with the settled rounds' journaled stats
        and ``rnd`` rebuilt at its last checkpoint (its intake replayed;
        its coordinator possibly mid-mixing).  The interrupted round's
        fault events are not re-fired — they already acted before the
        crash, and tamper budgets/fail flags are not part of the
        durable state (see DESIGN.md on the recovery contract).
        """
        started = time.monotonic()
        try:
            self._stream_loop(report, rnd, stats, first=first, resumed=True)
        finally:
            self.deployment.close()
        report.wall_s += time.monotonic() - started
        return report

    def schedule_spec(self) -> str:
        """The schedule in its parseable grammar (journaled at stream
        start so ``resume`` reconstructs the same schedule)."""
        return ";".join(ev.describe() for ev in self.schedule.events)

    def _stream_loop(self, report: StreamReport, rnd: Round,
                     stats: RoundStats, first: int, resumed: bool) -> None:
        """Rounds ``first..rounds-1``; ``rnd``/``stats`` are round
        ``first`` with its intake already drained."""
        total = self.stream.rounds
        for r in range(first, total):
            next_rnd = next_stats = None
            next_plan: List[Tuple[str, object, int]] = []
            if r + 1 < total:
                next_rnd = self._new_round(r + 1)
                next_stats = RoundStats(r + 1)
                next_plan = self._plan_intake(r + 1)

            result = self._run_one_round(
                rnd, stats, next_rnd, next_stats, next_plan,
                apply_events=not (resumed and r == first),
            )
            if result.aborted:
                # Handled before draining the leftover intake: a
                # blame-rekey discards the next round's epoch, so
                # submissions built now would be wasted crypto.
                result, rnd, next_rnd = self._handle_abort(
                    result, rnd, stats, next_rnd, next_stats, next_plan
                )
            # Whatever intake mixing did not absorb completes now,
            # before the next round's own mix window opens.
            if next_rnd is not None:
                self._drain_intake(next_rnd, next_stats, next_plan)

            stats.ok = result.ok
            stats.messages = list(result.messages)
            report.rounds.append(stats)
            # Round-boundary checkpoint: stats plus the rng position —
            # with the next round's intake drained, this is the
            # between-rounds resume point.
            self.deployment.store.round_settled(stats, self.rng)
            # The round is settled; drop its retained submissions so
            # a sustained stream holds O(1) rounds of intake, not
            # O(rounds), and release its node endpoints so the TCP
            # transport does not accumulate one listener set per
            # round.  (Attack uids stay: they are a few ints per
            # *scheduled* event, and tests read them post-run.)
            self._honest.pop(r, None)
            if rnd.coordinator is not None:
                rnd.coordinator.release()
            if self.on_round_settled is not None:
                self.on_round_settled(r)
            rnd, stats = next_rnd, next_stats

    def _run_one_round(
        self,
        rnd: Round,
        stats: RoundStats,
        next_rnd: Optional[Round],
        next_stats: Optional[RoundStats],
        next_plan: List[Tuple[str, object, int]],
        apply_events: bool,
    ) -> RoundResult:
        """Mix one round, firing fault events and interleaving next-round
        intake between layers; recover stalled groups in place."""
        if apply_events:
            self._reset_behaviors()
            self._apply_server_events(rnd, None)
        mix_started = time.monotonic()
        run = self.deployment.begin_mixing(rnd, self.rng)
        # Each layer's events fire once per round, not again when a
        # recovered layer retries — otherwise a fail-group event would
        # re-kill the freshly restored group forever.
        fired_layers = set()
        while not run.done:
            if apply_events and run.layer not in fired_layers:
                self._apply_server_events(rnd, run.layer)
                fired_layers.add(run.layer)
            try:
                run.run_layer()
            except GroupStalled as stalled:
                self._recover_group(rnd, stalled, stats)
                if next_rnd is not None and next_rnd.coordinator is not None:
                    # The pipelined round routes through the same dead
                    # process; its intake continues locally too.
                    next_rnd.coordinator.rehome_group(stalled.gid)
                continue  # retry the same layer with the restored group
            except ProtocolAbort as failure:
                stats.mix_wall_s += time.monotonic() - mix_started
                return run.abort(failure)
            if next_plan and self.stream.overlap_intake:
                # Spread the remaining intake over the remaining layers
                # (none after the last: its successors are exit work).
                budget = -(-len(next_plan) // max(1, run.remaining_layers))
                for _ in range(budget):
                    if not next_plan:
                        break
                    elapsed = self._execute_intake(
                        next_rnd, next_stats, next_plan.pop(0)
                    )
                    next_stats.overlap_s += elapsed
                    stats.foreign_intake_s += elapsed
        result = run.finish()
        stats.mix_wall_s += time.monotonic() - mix_started
        return result

    def _handle_abort(
        self,
        result: RoundResult,
        rnd: Round,
        stats: RoundStats,
        next_rnd: Optional[Round],
        next_stats: Optional[RoundStats],
        next_plan: List[Tuple[str, object, int]],
    ) -> Tuple[RoundResult, Round, Optional[Round]]:
        """Blame, optionally rekey, and retry an aborted round (§4.6).

        Returns the (possibly retried) result plus the current and next
        Round objects — both are rebuilt when blame forces a rekey, in
        which case ``next_plan`` (intake queued for the discarded next
        round) is cleared after being replayed onto the fresh epoch.
        """
        stats.abort_reasons.append(result.abort_reason)
        blame_ran = False
        if self.deployment.config.variant == "trap" and rnd.trap_submissions:
            blame_ran = True
            stats.blamed_users = self.deployment.blame(rnd).all_blamed

        r = rnd.round_id
        if blame_ran and self.stream.rekey_after_blame:
            # Blame reveals this epoch's entry-group keys whether or not
            # it names a user (every entry group opens its keys, §4.6);
            # the stream must not keep encrypting to them — even when
            # the aborted round itself is not retried.  Form a fresh
            # epoch and rebuild the (possibly partially-intaken) next
            # round on it.
            rekey_rnd = self._establish_contexts(r)
            stats.rekeyed = True
            if next_rnd is not None:
                next_id = next_rnd.round_id
                next_rnd = self._new_round(next_id)
                self._honest.pop(next_id, None)
                self._malicious_uids.pop(next_id, None)
                next_stats.overlap_s = 0.0
                next_stats.intake_s = 0.0
                next_stats.submitted = 0
                next_stats.dummies = 0
                next_plan.clear()  # queued for the discarded epoch
                self._drain_intake(next_rnd, next_stats, self._plan_intake(next_id))
        else:
            rekey_rnd = None
        if not self.stream.retry_aborted:
            return result, rnd, next_rnd

        # The rekey already produced a fresh Round for r (trustees and
        # forger included); reuse it rather than paying setup twice.
        retry_rnd = rekey_rnd if rekey_rnd is not None else self._new_round(r)

        replay_started = time.monotonic()
        for message, gid in self._honest.get(r, []):
            if self.deployment.config.variant == "trap":
                self.deployment.submit_trap(retry_rnd, message, gid, self.client)
            else:
                self.deployment.submit_plain(retry_rnd, message, gid, self.client)
        # The retry replays the same senders (submitted is unchanged)
        # but pads a fresh round: its dummy count replaces the aborted
        # attempt's, which left the pipeline with that round.
        stats.dummies = self.deployment.pad_round(retry_rnd, self.rng)
        stats.intake_s += time.monotonic() - replay_started

        # The adversary is exposed (abort named its group, or blame its
        # users); the retry models the clean rerun after its exclusion.
        # Without this, a tamperer whose budget a mid-layer abort
        # restored would deterministically re-abort every nizk retry.
        self._reset_behaviors()
        stats.attempts += 1
        retry_result = self._run_one_round(
            retry_rnd, stats, None, None, [], apply_events=False
        )
        if retry_result.aborted:
            stats.abort_reasons.append(retry_result.abort_reason)
        return retry_result, retry_rnd, next_rnd
