"""Atom server identity and state.

A server has a long-term identity key (its directory entry), hardware
attributes used by the performance model (cores, bandwidth — the §6.2
heterogeneous fleet), a fail-stop flag for churn experiments, and an
optional :class:`Behavior` policy for active-adversary experiments.

Per-round, per-group *mixing* keys are generated fresh each round
(§4.4: "the group keys change across rounds") and live in the
:class:`~repro.core.group.GroupContext`, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.elgamal import ElGamalKeyPair
from repro.crypto.groups import Group


class Behavior(enum.Enum):
    """Adversary policies for experiments (paper §4.3, §4.4, §7)."""

    HONEST = "honest"
    #: drop one ciphertext during mixing (trap variant: caught w.p. 1/2)
    DROP_ONE = "drop_one"
    #: replace one ciphertext with a fresh encryption of attacker text
    REPLACE_ONE = "replace_one"
    #: duplicate one ciphertext (caught by explicit duplicate checks)
    DUPLICATE_ONE = "duplicate_one"
    #: permute dishonestly but claim otherwise (NIZK variant: proof fails)
    BAD_SHUFFLE = "bad_shuffle"


@dataclass
class AtomServer:
    """One volunteer server in the deployment."""

    server_id: int
    group: Group
    identity: ElGamalKeyPair = None
    cores: int = 4
    bandwidth_mbps: float = 100.0
    failed: bool = False
    behavior: Behavior = Behavior.HONEST
    #: how many tamperings a malicious server attempts per round
    tamper_budget: int = 1

    def __post_init__(self) -> None:
        if self.identity is None:
            self.identity = ElGamalKeyPair.generate(self.group)

    @property
    def is_malicious(self) -> bool:
        return self.behavior is not Behavior.HONEST

    @property
    def streaming_safe(self) -> bool:
        """Whether this member may mix on the streaming (batch-buffer)
        data plane.  Tampering hooks mutate vector *object* lists, so a
        malicious member forces its group onto the legacy object path —
        test instrumentation only; a real deployment streams always."""
        return not self.is_malicious

    def fail(self) -> None:
        """Fail-stop: the server stops responding (churn, §4.5)."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def __repr__(self) -> str:
        flags = []
        if self.failed:
            flags.append("failed")
        if self.is_malicious:
            flags.append(self.behavior.value)
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"AtomServer({self.server_id}, {self.cores}c, {self.bandwidth_mbps}Mbps{suffix})"
