"""Command-line interface for the Atom reproduction.

Usage (after ``pip install -e .``):

    python -m repro.cli round --users 8 --groups 2 --variant trap
    python -m repro.cli simulate --servers 1024 --messages 1048576
    python -m repro.cli group-size --f 0.2 --groups 1024 --h 2
    python -m repro.cli costs --cores 4
"""

from __future__ import annotations

import argparse
import sys


def cmd_round(args: argparse.Namespace) -> int:
    """Run a real protocol round over the selected transport."""
    from repro.core import AtomDeployment, DeploymentConfig
    from repro.crypto.groups import DeterministicRng
    from repro.net.chaos import NetFaultPlanError

    try:
        config = DeploymentConfig(
            num_servers=max(args.groups * args.group_size, 2 * args.group_size),
            num_groups=args.groups,
            group_size=args.group_size,
            variant=args.variant,
            iterations=args.iterations,
            message_size=args.message_size,
            crypto_group=args.crypto_group,
            parallelism=args.parallelism,
            transport=args.transport,
            state_dir=args.state_dir,
            data_plane=args.data_plane,
            spill_threshold=args.spill_threshold,
            net_faults=args.net_faults or None,
            rpc_timeout=args.rpc_timeout,
            heartbeat=args.heartbeat,
            wal_segment_bytes=args.wal_segment_bytes,
            wal_segment_records=args.wal_segment_records,
            wal_retain_segments=args.wal_retain_segments,
        )
    except (NetFaultPlanError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    seed = args.seed
    if seed is None and args.state_dir:
        # Recovery replays the round's rng draws instead of storing
        # secret keys, so a durable round must be seeded; generate one
        # (it lands in the write-ahead log's rng marks).
        import secrets as _secrets

        seed = _secrets.token_hex(8)
        print(f"(--state-dir without --seed: using generated seed {seed})")
    setup_rng = DeterministicRng(seed.encode()) if seed else None
    mix_rng = DeterministicRng(seed.encode() + b"/mix") if seed else None
    with AtomDeployment(config) as deployment:
        rnd = deployment.start_round(0, rng=setup_rng)
        unit = deployment.required_user_multiple()
        users = -(-args.users // unit) * unit
        if users != args.users:
            print(f"(padding {args.users} -> {users} users for even batches)")
        for i in range(users):
            message = f"user {i} says hi".encode()[: args.message_size]
            if args.variant == "trap":
                deployment.submit_trap(rnd, message, entry_gid=i % args.groups)
            else:
                deployment.submit_plain(rnd, message, entry_gid=i % args.groups)
        result = deployment.run_round(rnd, mix_rng)
    print(f"round: {'ok' if result.ok else 'ABORTED: ' + result.abort_reason} "
          f"({args.transport} transport)")
    _print_round_result(result)
    return 0 if result.ok else 1


def _print_round_result(result) -> None:
    """Shared tail of `round` and `resume` output."""
    print(f"messages out: {len(result.messages)}, "
          f"bytes moved: {result.bytes_sent_total:,}")
    for message in result.messages[:10]:
        print(" ", message)
    if len(result.messages) > 10:
        print(f"  ... and {len(result.messages) - 10} more")


#: demo schedule exercising the full robustness surface: a
#: beyond-threshold group stall (buddy recovery), a tampering server
#: (trap catch), and a double-writing malicious user (blame).
DEFAULT_STREAM_FAULTS = (
    "r2.i1:fail-group:0:2;"
    "r5:tamper-group:1:0:replace_one;"
    "r8:user:duplicate_inner@1"
)


def cmd_run_stream(args: argparse.Namespace) -> int:
    """Run a multi-round pipelined stream under a fault schedule."""
    from repro.core import DeploymentConfig, FaultSchedule, StreamConfig, StreamEngine
    from repro.core.pipeline import FaultScheduleError
    from repro.net.chaos import NetFaultPlanError

    try:
        config = DeploymentConfig(
            num_servers=max(args.groups * args.group_size, 2 * args.group_size),
            num_groups=args.groups,
            group_size=args.group_size,
            variant=args.variant,
            mode=args.mode,
            h=args.h,
            iterations=args.iterations,
            message_size=args.message_size,
            crypto_group=args.crypto_group,
            parallelism=args.parallelism,
            transport=args.transport,
            state_dir=args.state_dir,
            data_plane=args.data_plane,
            spill_threshold=args.spill_threshold,
            net_faults=args.net_faults or None,
            rpc_timeout=args.rpc_timeout,
            heartbeat=args.heartbeat,
            wal_segment_bytes=args.wal_segment_bytes,
            wal_segment_records=args.wal_segment_records,
            wal_retain_segments=args.wal_retain_segments,
        )
        schedule = FaultSchedule.parse(args.fault_schedule)
        if args.variant != "trap" and schedule.has_user_events():
            # User attacks abuse trap submissions; keep the schedule's
            # churn/tampering events when the variant cannot host them.
            schedule.events = [ev for ev in schedule.events if ev.action != "user"]
            print(f"(dropping user-attack events: {args.variant} variant)")
        # Default seed chosen so the demo schedule's round-5 tampering
        # is caught by the traps (an honest coin otherwise evades
        # w.p. 1/2); the flag itself defaults to None uniformly.
        seed = args.seed if args.seed is not None else "atom-rpc"
        engine = StreamEngine(
            config,
            schedule,
            StreamConfig(
                rounds=args.rounds,
                users_per_round=args.users,
                seed=seed.encode(),
            ),
        )
    except (FaultScheduleError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if schedule.events:
        print("fault schedule:")
        for event in schedule.events:
            print(f"  {event.describe()}")
    try:
        with engine:
            report = engine.run()
    except FaultScheduleError as exc:
        # e.g. an event addressing a server id that never existed —
        # only resolvable once the fleet is live
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format_table())
    overlapped = len(report.overlapped_rounds())
    print(
        f"pipelining: intake of round r+1 overlapped round r's mixing in "
        f"{overlapped}/{max(1, len(report.rounds) - 1)} eligible rounds"
    )
    return 0 if report.ok else 1


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue an interrupted run from its ``--state-dir``."""
    from repro.store.recovery import RecoveryError, RecoveryManager

    try:
        manager = RecoveryManager(args.state_dir)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"state dir: {manager.describe()}")
    if manager.clean_shutdown:
        print("nothing to resume (clean shutdown marker present)")
        return 0
    try:
        if manager.is_stream:
            report = manager.resume_stream()
            print(report.format_table())
            return 0 if report.ok else 1
        finished = manager.finalize_round()
        if finished is not None:
            round_id, ok = finished
            print(
                f"round {round_id} already ran its exit protocol "
                f"({'ok' if ok else 'aborted'}); clean marker written"
            )
            return 0 if ok else 1
        result = manager.complete_round()
    except RecoveryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"resumed round: {'ok' if result.ok else 'ABORTED: ' + result.abort_reason}"
    )
    _print_round_result(result)
    return 0 if result.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Host one fleet process: the ServerNodes of the plan's groups
    behind a loopback TCP listener (see repro.fleet.server)."""
    from repro.fleet.server import run_server

    return run_server(args.plan, args.name)


def cmd_fleet(args: argparse.Namespace) -> int:
    """Operate a fleet: spawn it, probe it, roll it, replace a dead
    member from shipped state, tear it down."""
    from repro.fleet.controller import FleetController, FleetError
    from repro.fleet.plan import DeploymentPlan, PlanError

    try:
        plan = DeploymentPlan.load(args.plan)
        controller = FleetController(plan, runtime_dir=args.runtime_dir)
        if args.action == "up":
            status = controller.up()
            print(status.describe())
        elif args.action == "status":
            print(controller.status().describe())
        elif args.action == "roll":
            controller.roll()
            print(controller.status().describe())
        elif args.action == "replace":
            if not args.name:
                print("error: replace needs --name", file=sys.stderr)
                return 2
            shipped = controller.replace(args.name)
            print(
                f"{args.name}: replaced "
                + (
                    f"from shipped checkpoint bundle ({shipped} live records)"
                    if shipped
                    else "by plain respawn (no state dir to ship from)"
                )
            )
            print(controller.status().describe())
        else:  # down
            controller.down()
            print("fleet: stopped")
    except (OSError, PlanError, FleetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect or compact a state directory's segmented log."""
    from pathlib import Path

    from repro.store.compact import (
        compact_state_dir,
        deployment_liveness,
        fleet_liveness,
    )
    from repro.store.segments import LogDir, LogDirError

    root = Path(args.state_dir)
    if args.fleet:
        legacy, liveness = "fleet.wal", fleet_liveness
        # the process journal lives in its own subdirectory (a legacy
        # top-level fleet.wal is migrated in by the same helper the
        # server uses)
        if (root / "fleet-log").exists() or (root / "fleet.wal").exists():
            from repro.fleet.server import fleet_log_root

            root = fleet_log_root(root)
    else:
        legacy, liveness = "atom.wal", deployment_liveness
    if not LogDir.present(root, legacy):
        print(f"error: no log under {root}", file=sys.stderr)
        return 2
    if args.action == "info":
        try:
            scan = LogDir.scan_dir(root, legacy)
        except LogDirError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{root}:")
        for name, count in scan.counts:
            size = (root / name).stat().st_size
            print(f"  {name:18s}  {count:7d} records  {size:10,d} bytes")
        state = "clean shutdown" if scan.clean_shutdown else "resumable"
        if scan.truncated:
            state += f", truncated ({scan.reason})"
        print(
            f"  total: {len(scan.records)} records, "
            f"{scan.disk_bytes:,} bytes ({state})"
        )
        return 0
    # compact — single-writer: only safe with the owning process down
    try:
        stats = compact_state_dir(root, liveness, legacy_name=legacy)
    except LogDirError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if stats.ran:
        print(
            f"compacted {root}: dropped {stats.dropped}/{stats.examined} "
            f"sealed records, removed {stats.segments_removed} segments, "
            f"{stats.bytes_before:,} -> {stats.bytes_after:,} bytes"
        )
    else:
        print(
            f"nothing to compact under {root} "
            f"({stats.examined} sealed records, all live)"
        )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """Run, describe, or list declarative workload scenarios."""
    from repro.scenarios import (
        ConservationError,
        ScenarioError,
        ScenarioRunner,
        list_bundled,
        load_scenario,
    )

    if args.action == "list":
        for name in list_bundled():
            spec = load_scenario(name)
            print(f"{name:26s}  {spec.rounds} rounds, "
                  f"{spec.traffic.kind} traffic, "
                  f"{spec.traffic.users} users")
            print(f"{'':26s}  {spec.description}")
        return 0
    if not args.scenario:
        print("error: scenario name or file required", file=sys.stderr)
        return 2
    try:
        spec = load_scenario(args.scenario)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "describe":
        print(spec.to_json(), end="")
        return 0
    overrides = {
        key: getattr(args, key)
        for key in ("transport", "state_dir", "group", "data_plane",
                    "spill_threshold", "wal_segment_bytes",
                    "wal_segment_records", "wal_retain_segments")
        if getattr(args, key) is not None
    }
    try:
        runner = ScenarioRunner(spec, seed=args.seed, **overrides)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        metrics = runner.run()
    except ConservationError as exc:
        print(f"error: conservation violated: {exc}", file=sys.stderr)
        return 1
    print(metrics.format_table())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(metrics.to_json())
        print(f"report written to {args.json_out}")
    return 0 if metrics.ok else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the calibrated performance simulator."""
    from repro.sim import AtomSimulator, SimConfig

    sim = AtomSimulator(
        SimConfig(
            num_servers=args.servers,
            num_groups=args.servers,
            variant=args.variant,
            application=args.application,
            message_size=160 if args.application == "microblog" else 80,
        )
    )
    result = sim.simulate_round(args.messages)
    print(f"{args.messages:,} messages on {args.servers} servers "
          f"({args.variant}, {args.application}):")
    print(f"  total latency: {result.total_minutes:.1f} min "
          f"({result.total_hours:.2f} hr)")
    print(f"  per iteration: {result.per_iteration_s:.1f} s, "
          f"entry {result.entry_s:.1f} s, exit {result.exit_s:.1f} s, "
          f"connection overhead {result.overhead_s:.1f} s")
    print(f"  ciphertexts routed: {result.ciphertexts_routed:,}")
    print(f"  per-server bandwidth: "
          f"{result.per_server_bandwidth_bytes_s / 1e6:.2f} MB/s")
    return 0


def cmd_group_size(args: argparse.Namespace) -> int:
    """Group-size math (§4.1 / Appendix B)."""
    from repro.analysis.groups_math import (
        manytrust_failure_probability,
        minimum_group_size,
    )

    k = minimum_group_size(args.f, args.groups, args.h, args.security)
    prob = manytrust_failure_probability(k, args.f, args.h, args.groups)
    print(f"f={args.f}, G={args.groups}, h={args.h}, target 2^-{args.security}:")
    print(f"  required group size k = {k} (failure probability {prob:.2e})")
    print(f"  active servers per iteration: k-(h-1) = {k - (args.h - 1)}")
    return 0


def cmd_list_groups(args: argparse.Namespace) -> int:
    """List the registered group backends and their element sizes."""
    from repro.crypto.groups import available_groups, get_group

    print(f"{'name':10s}  {'element':>7s}  {'scalar':>6s}  {'payload':>7s}")
    for name in available_groups():
        group = get_group(name)
        scalar_bytes = (group.q.bit_length() + 7) // 8
        print(
            f"{name:10s}  {group.element_bytes:6d}B  {scalar_bytes:5d}B  "
            f"{group.params.message_bytes:6d}B"
        )
    return 0


def cmd_list_transports(args: argparse.Namespace) -> int:
    """List transports and data planes (the `--transport` /
    `--data-plane` choices of `round` and `run-stream`)."""
    from repro.net.transport import TRANSPORTS

    descriptions = {
        "inproc": "zero-copy in-process dispatch (default)",
        "tcp": "each node behind a loopback asyncio TCP socket",
        "fleet": "groups hosted by separate OS processes "
                 "(DeploymentConfig.fleet_plan; `repro fleet up`)",
    }
    print("transports (--transport):")
    for name in TRANSPORTS + ("fleet",):
        print(f"  {name:8s}  {descriptions.get(name, '')}")
    print("data planes (--data-plane):")
    for name in sorted(DATA_PLANES):
        print(f"  {name:8s}  {DATA_PLANES[name]}")
    print("spilling (--spill-threshold N): batch plane only; intake "
          "overflows to scratch disk segments every N ciphertexts")
    return 0


def cmd_costs(args: argparse.Namespace) -> int:
    """§7 deployment cost estimate."""
    from repro.analysis.costs import estimate_server_cost

    est = estimate_server_cost(args.cores)
    print(f"{args.cores}-core trap-variant server (§7 estimates):")
    print(f"  reencryption: {est.reencrypt_msgs_per_s:,.0f} msgs/s")
    print(f"  shuffling:    {est.shuffle_msgs_per_s:,.0f} msgs/s")
    print(f"  bandwidth:    {est.bandwidth_bytes_per_s / 1e3:.0f} KB/s")
    print(f"  compute:      ${est.compute_usd_month:,.0f}/month")
    print(f"  bandwidth:    ${est.bandwidth_usd_month:,.2f}/month")
    print(f"  total:        ${est.total_usd_month:,.2f}/month")
    return 0


#: single source of truth for the flag wording shared across
#: subcommands (`round`, `run-stream`, `resume`): keep `repro <cmd>
#: --help` saying the same thing everywhere
_STATE_DIR_HELP = (
    "directory for the durable state store (write-ahead log + "
    "checkpoints); an interrupted run continues with "
    "`repro resume --state-dir DIR`"
)
_SEED_HELP = (
    "deterministic rng seed (required for crash recovery; `round` "
    "generates one when --state-dir is set, `run-stream` falls back "
    "to its demo seed)"
)

#: data planes selectable via --data-plane (introspected by
#: `repro list-transports`)
DATA_PLANES = {
    "batch": "contiguous serialized CiphertextBatch buffers "
             "(bounded-memory; supports --spill-threshold)",
    "object": "legacy per-vector object lists "
              "(byte-equivalence baseline; no spilling)",
}


def build_parser() -> argparse.ArgumentParser:
    from repro.crypto.groups import available_groups
    from repro.net.transport import TRANSPORTS

    parser = argparse.ArgumentParser(
        prog="repro", description="Atom (SOSP 2017) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # One parent parser for every deployment-shaped command, so
    # --seed/--group/--transport/--state-dir/--data-plane/
    # --spill-threshold are spelled, defaulted, and documented
    # identically on `round` and `run-stream`.
    deploy = argparse.ArgumentParser(add_help=False)
    deploy.add_argument(
        "--group",
        "--crypto-group",
        dest="crypto_group",
        type=str.upper,
        choices=available_groups(),
        default="TOY",
        help="group backend from the registry (see `repro list-groups`)",
    )
    deploy.add_argument(
        "--transport",
        choices=list(TRANSPORTS),
        default="inproc",
        help="how nodes exchange envelopes: zero-copy in-process "
        "dispatch, or each node behind a loopback TCP socket "
        "(see `repro list-transports`)",
    )
    deploy.add_argument("--state-dir", default=None, help=_STATE_DIR_HELP)
    deploy.add_argument("--seed", default=None, help=_SEED_HELP)
    deploy.add_argument(
        "--data-plane",
        choices=sorted(DATA_PLANES),
        default="batch",
        help="how ciphertexts live between protocol steps "
        "(see `repro list-transports`)",
    )
    deploy.add_argument(
        "--spill-threshold",
        type=int,
        default=0,
        metavar="N",
        help="spill intake holdings to scratch disk segments every N "
        "ciphertexts (0: never; batch data plane only) — bounds RSS "
        "for very large rounds",
    )
    deploy.add_argument(
        "--wal-segment-bytes",
        type=int,
        default=8 * 1024 * 1024,
        metavar="BYTES",
        help="rotate the write-ahead log into a new segment file past "
        "this size (0: never by size) — bounds any single wal-*.seg",
    )
    deploy.add_argument(
        "--wal-segment-records",
        type=int,
        default=0,
        metavar="N",
        help="... or past this many records (0: never by count); small "
        "values force rotation on short streams",
    )
    deploy.add_argument(
        "--wal-retain-segments",
        type=int,
        default=4,
        metavar="N",
        help="compact once more than N sealed segments have piled up "
        "(0: never auto-compact) — bounds the state dir to roughly "
        "(N+2) segments plus the live suffix",
    )

    def add_net_args(p):
        p.add_argument(
            "--net-faults",
            default=None,
            metavar="PLAN",
            help="seed-deterministic network fault plan, e.g. "
            "'*:drop:2%%;*:delay:20:10%%;mix_batch:reorder:50%%' "
            "(see repro.net.chaos for the grammar)",
        )
        p.add_argument(
            "--rpc-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="base RPC deadline (mixing RPCs get 4x; default 30)",
        )
        p.add_argument(
            "--heartbeat",
            action="store_true",
            help="probe groups with PING before each mixing layer and "
            "surface sustained silence as GroupStalled (buddy recovery)",
        )

    p_round = sub.add_parser(
        "round", parents=[deploy], help="run a real protocol round"
    )
    p_round.add_argument("--users", type=int, default=8)
    p_round.add_argument("--groups", type=int, default=2)
    p_round.add_argument("--group-size", type=int, default=3)
    p_round.add_argument("--variant", choices=["basic", "nizk", "trap"], default="trap")
    p_round.add_argument("--iterations", type=int, default=4)
    p_round.add_argument("--message-size", type=int, default=24)
    p_round.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker processes for mixing one layer's groups (1 = serial)",
    )
    add_net_args(p_round)
    p_round.set_defaults(func=cmd_round)

    p_stream = sub.add_parser(
        "run-stream",
        parents=[deploy],
        help="run N consecutive pipelined rounds under a fault schedule",
    )
    p_stream.add_argument("--rounds", type=int, default=20)
    p_stream.add_argument("--users", type=int, default=4)
    p_stream.add_argument("--groups", type=int, default=2)
    p_stream.add_argument("--group-size", type=int, default=4)
    p_stream.add_argument("--h", type=int, default=2)
    p_stream.add_argument("--mode", choices=["anytrust", "manytrust"], default="manytrust")
    p_stream.add_argument("--variant", choices=["basic", "nizk", "trap"], default="trap")
    p_stream.add_argument("--iterations", type=int, default=4)
    p_stream.add_argument("--message-size", type=int, default=24)
    p_stream.add_argument("--parallelism", type=int, default=1)
    p_stream.add_argument(
        "--fault-schedule",
        default=DEFAULT_STREAM_FAULTS,
        help="semicolon-separated fault events "
        "(e.g. 'r2.i1:fail-group:0:2;r5:tamper-group:1:0:replace_one;"
        "r8:user:duplicate_inner@1'); pass '' for a fault-free stream",
    )
    add_net_args(p_stream)
    p_stream.set_defaults(func=cmd_run_stream)

    p_resume = sub.add_parser(
        "resume",
        help="continue an interrupted round or stream from its state dir",
    )
    p_resume.add_argument("--state-dir", required=True, help=_STATE_DIR_HELP)
    p_resume.set_defaults(func=cmd_resume)

    p_serve = sub.add_parser(
        "serve",
        help="host one fleet process (spawned by `repro fleet up`)",
    )
    p_serve.add_argument(
        "--plan", required=True, help="path to a saved DeploymentPlan"
    )
    p_serve.add_argument(
        "--name", required=True, help="this process's name in the plan"
    )
    p_serve.set_defaults(func=cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="operate a multi-process fleet from a deployment plan",
    )
    p_fleet.add_argument(
        "action",
        choices=["up", "status", "roll", "replace", "down"],
        help="up: spawn + readiness-gate; status: probe; "
        "roll: rolling restart; replace: restore one (dead) process "
        "from a shipped checkpoint bundle (--name); down: terminate",
    )
    p_fleet.add_argument(
        "--plan", required=True, help="path to a saved DeploymentPlan"
    )
    p_fleet.add_argument(
        "--runtime-dir",
        default=None,
        help="where pids and per-process logs live "
        "(default: <plan dir>/fleet-run)",
    )
    p_fleet.add_argument(
        "--name",
        default=None,
        help="plan name of the process to replace",
    )
    p_fleet.set_defaults(func=cmd_fleet)

    p_store = sub.add_parser(
        "store",
        help="inspect or compact a state dir's segmented write-ahead log",
    )
    p_store.add_argument(
        "action",
        choices=["info", "compact"],
        help="info: list segments/records and shutdown state; compact: "
        "rewrite sealed segments down to the live suffix (run only "
        "with the owning process stopped)",
    )
    p_store.add_argument(
        "--state-dir", required=True, help=_STATE_DIR_HELP
    )
    p_store.add_argument(
        "--fleet",
        action="store_true",
        help="operate on a fleet process's intake journal "
        "(<state-dir>/fleet-log) instead of a deployment store",
    )
    p_store.set_defaults(func=cmd_store)

    p_scn = sub.add_parser(
        "scenario",
        help="declarative workload scenarios driving the real apps "
        "(traffic model x faults x chaos x deployment, one file)",
    )
    p_scn.add_argument(
        "action",
        choices=["run", "describe", "list"],
        help="run: execute and report; describe: print the canonical "
        "spec; list: show the bundled scenarios",
    )
    p_scn.add_argument(
        "scenario",
        nargs="?",
        help="bundled scenario name (see `repro scenario list`) or a "
        "scenario file path",
    )
    p_scn.add_argument(
        "--seed", default=None,
        help="override the spec's rng seed (the whole run — traffic, "
        "keys, mixing, chaos — is a function of it)",
    )
    p_scn.add_argument(
        "--transport", choices=list(TRANSPORTS) + ["fleet"], default=None,
        help="override the spec's transport",
    )
    p_scn.add_argument(
        "--group", "--crypto-group", dest="group", type=str.upper,
        choices=available_groups(), default=None,
        help="override the spec's group backend",
    )
    p_scn.add_argument("--state-dir", default=None, help=_STATE_DIR_HELP)
    p_scn.add_argument(
        "--data-plane", choices=sorted(DATA_PLANES), default=None,
        help="override the spec's data plane",
    )
    p_scn.add_argument(
        "--spill-threshold", type=int, default=None, metavar="N",
        help="override the spec's spill threshold",
    )
    p_scn.add_argument(
        "--wal-segment-bytes", type=int, default=None, metavar="BYTES",
        help="override the spec's WAL segment size threshold",
    )
    p_scn.add_argument(
        "--wal-segment-records", type=int, default=None, metavar="N",
        help="override the spec's WAL segment record threshold",
    )
    p_scn.add_argument(
        "--wal-retain-segments", type=int, default=None, metavar="N",
        help="override the spec's sealed-segment retention bound",
    )
    p_scn.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the machine-readable ScenarioMetrics report",
    )
    p_scn.set_defaults(func=cmd_scenario)

    p_sim = sub.add_parser("simulate", help="run the performance simulator")
    p_sim.add_argument("--servers", type=int, default=1024)
    p_sim.add_argument("--messages", type=int, default=2 ** 20)
    p_sim.add_argument("--variant", choices=["basic", "nizk", "trap"], default="trap")
    p_sim.add_argument(
        "--application", choices=["microblog", "dialing"], default="microblog"
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_groups = sub.add_parser(
        "list-groups", help="list registered group backends and sizes"
    )
    p_groups.set_defaults(func=cmd_list_groups)

    p_transports = sub.add_parser(
        "list-transports",
        help="list transports and data planes (round/run-stream knobs)",
    )
    p_transports.set_defaults(func=cmd_list_transports)

    p_gs = sub.add_parser("group-size", help="anytrust/many-trust group sizing")
    p_gs.add_argument("--f", type=float, default=0.2)
    p_gs.add_argument("--groups", type=int, default=1024)
    p_gs.add_argument("--h", type=int, default=1)
    p_gs.add_argument("--security", type=int, default=64)
    p_gs.set_defaults(func=cmd_group_size)

    p_costs = sub.add_parser("costs", help="deployment cost estimate (§7)")
    p_costs.add_argument("--cores", type=int, default=4)
    p_costs.set_defaults(func=cmd_costs)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
