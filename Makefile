# One set of commands shared by CI (.github/workflows/ci.yml) and the
# local verify recipe, so "passes locally" and "passes in CI" mean the
# same thing.  Everything runs from the source tree via PYTHONPATH=src;
# no install step is required (see pyproject.toml for the optional
# editable install).

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test-fast test bench-smoke parity stream-smoke net-smoke net-strict persist-smoke chaos-smoke fleet-smoke scenario-smoke store-smoke clean

## Fast suite: everything but the slow-marked benchmarks/sweeps (~35 s).
test-fast:
	$(PYTEST) -q -m "not slow"

## Full tier-1: tests/ AND benchmarks/, fail-fast — the gate this repo
## is held to (~2 min).
test:
	$(PYTEST) -x -q

## Benchmark smoke: regenerates BENCH_*.json at the repo root (the
## fast-exponentiation engine, the MODP2048-vs-P256 backend dimension,
## and the bounded-memory data plane's RSS/throughput record); CI
## uploads the JSON as artifacts.
bench-smoke:
	$(PYTEST) -q -s benchmarks/test_fastexp_speedup.py \
		benchmarks/test_streaming_rss.py

## Cross-backend parity only (quick confidence after touching crypto/).
parity:
	$(PYTEST) -q tests/crypto/test_backend_parity.py tests/crypto/test_ec.py

## End-to-end stream on the paper's curve with the demo fault schedule,
## then a short spilling stream proving --spill-threshold end to end.
stream-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli run-stream --rounds 6 --group p256
	PYTHONPATH=src $(PYTHON) -m repro.cli run-stream --rounds 2 --group p256 \
		--spill-threshold 8

## One full TCP-loopback round (every node behind a local socket) on
## the realistic Schnorr group and on the paper's curve.
net-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli round --transport tcp --group modp2048 \
		--users 2 --groups 2 --group-size 2 --iterations 2
	PYTHONPATH=src $(PYTHON) -m repro.cli round --transport tcp --group p256 \
		--users 4 --groups 2 --iterations 3

## Durability end to end: run a 3-round MODP2048 stream with a state
## dir, SIGKILL it mid-round-2, resume from the write-ahead log, and
## require the final StreamReport to be fully ok.
persist-smoke:
	PYTHONPATH=src $(PYTHON) scripts/persist_smoke.py

## Resilience end to end: a 3-round TCP stream under a chaos plan
## (drop 2%, delay 20 ms on 10%, dup 1%) plus one undeclared server
## kill that heartbeats must detect and buddy recovery must heal.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) scripts/chaos_smoke.py

## Multi-process fleet end to end: a 3-round stream sharded over two
## `repro serve` OS processes with a full rolling restart mid-stream,
## byte-identical to the in-process baseline.
fleet-smoke:
	PYTHONPATH=src $(PYTHON) scripts/fleet_smoke.py

## Scenario engine end to end: the bundled spike + tamper + churn
## workload (mixed microblog/dialing traffic) over TCP — the tamper is
## caught by the traps, the blame-rekey retry heals delivery, churned
## users are reabsorbed, and the report's conservation assert runs.
scenario-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli scenario run \
		black-friday-tamper-churn --seed atom-rpc --transport tcp

## Sharded log store end to end: a long multi-process stream with tiny
## WAL segments — rotation + compaction keep the journal under a fixed
## disk ceiling, one process is SIGKILLed and rebuilt via checkpoint
## shipping, and the stream stays byte-identical to in-process.
store-smoke:
	PYTHONPATH=src $(PYTHON) scripts/store_smoke.py

## tests/net and tests/fleet with RuntimeWarnings promoted to errors:
## a leaked never-awaited coroutine in transport shutdown fails here.
net-strict:
	$(PYTEST) -q -W error::RuntimeWarning tests/net tests/fleet

clean:
	rm -rf src/repro_atom.egg-info build .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
