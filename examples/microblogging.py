#!/usr/bin/env python3
"""Anonymous microblogging (paper §5), driven by the scenario engine:
a steady declarative workload posts to the public bulletin board, then
a "Black Friday" spike scenario shows an actively malicious server
being caught by the traps mid-surge — the round retries and every post
still comes out.

Run:  python examples/microblogging.py
"""

from repro.scenarios import ScenarioRunner, ScenarioSpec, load_scenario


def main() -> None:
    # --- a steady honest workload, declared not hand-rolled -------------
    spec = ScenarioSpec.parse(
        {
            "name": "example-steady",
            "rounds": 3,
            "seed": "example",
            "traffic": {"model": "constant", "users": 6, "rate": 4.0},
            "deployment": {
                "groups": 2,
                "group_size": 3,
                "variant": "trap",
                "iterations": 3,
                "message_size": 40,
                "group": "TEST",
            },
        }
    )
    runner = ScenarioRunner(spec)
    metrics = runner.run()  # conservation-checked
    print("steady scenario:", "ok" if metrics.ok else "ABORTED")
    for round_id in range(spec.rounds):
        for post in runner.board.read(round_id):
            print(f"  board r{round_id}:", post.decode())

    # --- the bundled tamper scenario ------------------------------------
    print("\nblack-friday-tamper-churn (bundled): a server tampers during "
          "the spike round")
    bf = ScenarioRunner(load_scenario("black-friday-tamper-churn"))
    report = bf.run()
    print(report.format_table())
    caught = report.total_trap_catches
    healed = report.total_delivered == report.total_arrivals
    print(f"\ntamper attempts caught by traps: {caught} "
          f"(~50% per attempt; the round then blames, rekeys, retries)")
    print(f"healed delivery: {healed} — every arrival still reached the "
          f"board or a mailbox")
    print(f"churn: {report.total_churned} users left mid-scenario, "
          f"{report.total_rejoined} were reabsorbed")


if __name__ == "__main__":
    main()
