#!/usr/bin/env python3
"""Anonymous microblogging (paper §5): protest organizers post to a
public bulletin board; an actively malicious server tries to tamper and
is caught by the trap mechanism about half the time per attempt.

Run:  python examples/microblogging.py
"""

from repro.apps.microblog import MicroblogService
from repro.core import DeploymentConfig
from repro.core.server import Behavior


def main() -> None:
    config = DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=3,
        variant="trap",
        iterations=3,
        message_size=40,
        crypto_group="TEST",
    )

    # --- round 0: honest servers ---------------------------------------
    service = MicroblogService(config=config)
    posts = [
        b"meet at the square, 6pm",
        b"bring cameras",
        b"avoid the north gate",
        b"stay safe everyone",
    ]
    result = service.run_round(0, posts)
    print("round 0 (honest):", "ok" if result.ok else "aborted")
    for post in service.board.read(0):
        print("  board:", post.decode())

    # --- rounds 1..n: one server tampers --------------------------------
    print("\nmalicious server replacing one ciphertext per round (§4.4):")
    detected = 0
    trials = 6
    for trial in range(1, trials + 1):
        service = MicroblogService(config=config)
        rnd = service.deployment.start_round(trial)
        rnd.contexts[0].servers[0].behavior = Behavior.REPLACE_ONE
        for index, post in enumerate(posts):
            service.deployment.submit_trap(rnd, post, index % 2)
        result = service.deployment.run_round(rnd)
        status = "DETECTED (round aborted, nothing revealed)" if result.aborted else \
            "evaded traps (anonymity set shrank by exactly one)"
        print(f"  round {trial}: {status}")
        detected += result.aborted
    print(f"\ndetected {detected}/{trials} tampering attempts "
          f"(expected ~50% per attempt; k attempts succeed w.p. 2^-k)")


if __name__ == "__main__":
    main()
