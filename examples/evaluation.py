#!/usr/bin/env python3
"""Regenerate the paper's headline evaluation numbers from the
calibrated simulator (paper §6) — the quick tour of Figures 9-11 and
Table 12 without running the full benchmark suite.

Run:  python examples/evaluation.py
"""

from repro.baselines.riposte import riposte_latency_minutes
from repro.baselines.vuvuzela import vuvuzela_dial_latency_minutes
from repro.sim import AtomSimulator, SimConfig

MILLION = 2 ** 20


def main() -> None:
    print("Horizontal scaling, 1M microblogging messages (Fig 10 / Table 12)")
    print(f"{'servers':>8}  {'ours':>10}  {'paper':>8}")
    paper = {128: 228.7, 256: 113.4, 512: 56.3, 1024: 28.2}
    for n in (128, 256, 512, 1024):
        sim = AtomSimulator(SimConfig(num_servers=n, num_groups=n))
        print(f"{n:>8}  {sim.latency_minutes(MILLION):>8.1f}m  {paper[n]:>7}m")

    print("\nBaselines, 1M users (Table 12)")
    atom = AtomSimulator(SimConfig(num_servers=1024, num_groups=1024))
    atom_min = atom.latency_minutes(MILLION)
    riposte = riposte_latency_minutes(MILLION)
    print(f"  Atom microblog: {atom_min:6.1f} min "
          f"({riposte / atom_min:.1f}x faster than Riposte's {riposte:.0f} min)")
    dial = AtomSimulator(
        SimConfig(num_servers=1024, num_groups=1024,
                  application="dialing", message_size=80)
    ).latency_minutes(MILLION)
    vuvuzela = vuvuzela_dial_latency_minutes(MILLION)
    print(f"  Atom dialing:   {dial:6.1f} min "
          f"({dial / vuvuzela:.0f}x slower than Vuvuzela's {vuvuzela:.1f} min, "
          "but horizontally scalable and tamper-evident)")

    print("\nSimulated scale-out, 1B messages (Fig 11)")
    base = None
    for log_n in range(10, 16):
        n = 2 ** log_n
        result = AtomSimulator(
            SimConfig(num_servers=n, num_groups=n)
        ).simulate_round(10 ** 9)
        base = base or result.total_hours
        print(f"  2^{log_n} servers: {result.total_hours:6.1f} hr "
              f"(speed-up {base / result.total_hours:4.1f}x)")

    result = atom.simulate_round(MILLION)
    print(f"\nPer-server bandwidth at 1M messages: "
          f"{result.per_server_bandwidth_bytes_s / 1e6:.2f} MB/s "
          "(paper: <1 MB/s; Vuvuzela needs 166 MB/s)")


if __name__ == "__main__":
    main()
