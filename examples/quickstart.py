#!/usr/bin/env python3
"""Quickstart: run one full Atom round in-process.

Builds a small deployment (2 anytrust groups of 3 servers, square
topology, trap variant — the configuration the paper evaluates), routes
eight messages through T mixing iterations, and prints the anonymized
output.

Run:  python examples/quickstart.py
"""

from repro.core import AtomDeployment, DeploymentConfig


def main() -> None:
    config = DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=3,
        variant="trap",       # trap-based active-attack defense (§4.4)
        iterations=4,         # mixing iterations T (paper uses 10 at scale)
        message_size=24,
        crypto_group="TEST",  # 128-bit Schnorr group
    )
    with AtomDeployment(config) as deployment:
        print(f"deployment: {config.num_groups} groups of {config.group_size} "
              f"servers, {config.iterations} mixing iterations, {config.variant} variant")
        print(f"payload: {deployment.spec.payload_size} bytes "
              f"({deployment.spec.elements_per_message} group elements/message)\n")

        rnd = deployment.start_round(round_id=0)
        messages = [f"anonymous message #{i}".encode() for i in range(8)]
        for index, message in enumerate(messages):
            user = deployment.submit_trap(rnd, message, entry_gid=index % 2)
            print(f"user {user} -> entry group {index % 2}: {message.decode()}")

        result = deployment.run_round(rnd)

    print(f"\nround {'SUCCEEDED' if result.ok else 'ABORTED: ' + result.abort_reason}")
    print(f"traps checked: {result.num_traps_checked}, "
          f"bytes moved: {result.bytes_sent_total:,}")
    print("\nanonymized output (order is the mixed permutation):")
    for message in result.messages:
        print(f"  {message.decode()}")

    assert sorted(result.messages) == sorted(messages), "correctness violated!"
    print("\nall submitted messages delivered — correctness holds (§2.2)")


if __name__ == "__main__":
    main()
