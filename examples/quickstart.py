#!/usr/bin/env python3
"""Quickstart: run one full Atom round in-process.

Builds a small deployment (2 anytrust groups of 3 servers, square
topology, trap variant — the configuration the paper evaluates), routes
eight messages through T mixing iterations, and prints the anonymized
output.  A second act kills a durable round after its first layer
commit and resumes it from the sharded write-ahead log — showing the
segmented layout rotating and compacting so disk stays bounded.  A
third act runs a round under a chaotic network (dropped and delayed
RPCs) and shows the resilience layer keeping the output identical.

Run:  python examples/quickstart.py
"""

import shutil
import tempfile

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.crypto.groups import DeterministicRng


def main() -> None:
    config = DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=3,
        variant="trap",       # trap-based active-attack defense (§4.4)
        iterations=4,         # mixing iterations T (paper uses 10 at scale)
        message_size=24,
        crypto_group="TEST",  # 128-bit Schnorr group
    )
    with AtomDeployment(config) as deployment:
        print(f"deployment: {config.num_groups} groups of {config.group_size} "
              f"servers, {config.iterations} mixing iterations, {config.variant} variant")
        print(f"payload: {deployment.spec.payload_size} bytes "
              f"({deployment.spec.elements_per_message} group elements/message)\n")

        rnd = deployment.start_round(round_id=0)
        messages = [f"anonymous message #{i}".encode() for i in range(8)]
        for index, message in enumerate(messages):
            user = deployment.submit_trap(rnd, message, entry_gid=index % 2)
            print(f"user {user} -> entry group {index % 2}: {message.decode()}")

        result = deployment.run_round(rnd)

    print(f"\nround {'SUCCEEDED' if result.ok else 'ABORTED: ' + result.abort_reason}")
    print(f"traps checked: {result.num_traps_checked}, "
          f"bytes moved: {result.bytes_sent_total:,}")
    print("\nanonymized output (order is the mixed permutation):")
    for message in result.messages:
        print(f"  {message.decode()}")

    assert sorted(result.messages) == sorted(messages), "correctness violated!"
    print("\nall submitted messages delivered — correctness holds (§2.2)")

    kill_and_resume()
    chaos_round()


def kill_and_resume() -> None:
    """Durability demo: die after the first layer commit, come back.

    With a ``state_dir``, every accepted submission and every committed
    mixing layer lands in a write-ahead log — sharded across rotating
    segment files (``wal-<seq>.seg`` + an atomic ``wal.manifest``), so
    a long-lived journal stays bounded instead of growing forever.  We
    run a seeded round with a deliberately tiny rotation threshold,
    'kill' it right after layer 1 commits (abandon the process state —
    the log keeps only what was journaled), then let
    :class:`~repro.store.recovery.RecoveryManager` rebuild the
    deployment and re-enter mixing at the committed layer.  The resumed
    output is byte-identical to what the uninterrupted round would
    have delivered — and a safe-point compaction afterwards shrinks
    the settled history down to O(state).
    """
    from repro.store.compact import compact_state_dir
    from repro.store.recovery import RecoveryManager
    from repro.store.segments import LogDir

    state_dir = tempfile.mkdtemp(prefix="atom-quickstart-")
    config = DeploymentConfig(
        num_servers=8, num_groups=2, group_size=3, variant="trap",
        iterations=4, message_size=24, crypto_group="TEST",
        state_dir=state_dir,
        wal_segment_records=8,   # rotate every 8 records (default: 8 MiB)
    )
    print("\n--- kill and resume ---")
    deployment = AtomDeployment(config)
    rng = DeterministicRng(b"quickstart-setup")
    rnd = deployment.start_round(round_id=0, rng=rng)
    client = Client(deployment.group, rng)
    messages = [f"durable message #{i}".encode() for i in range(8)]
    for index, message in enumerate(messages):
        deployment.submit_trap(rnd, message, entry_gid=index % 2, client=client)

    run = deployment.begin_mixing(rnd, DeterministicRng(b"quickstart-mix"))
    run.run_layer()
    deployment.close()  # simulated crash: no clean-shutdown marker
    scan = LogDir.scan_dir(state_dir)
    print(f"crashed after 1/{config.iterations} layer commits; "
          f"state dir: {state_dir}")
    print(f"journal: {len(scan.records)} records across "
          f"{len(scan.segments_read)} segments, {scan.disk_bytes:,} bytes")

    manager = RecoveryManager(state_dir)
    print(f"recovery sees: {manager.describe()}")
    result = manager.complete_round()

    print(f"resumed round {'SUCCEEDED' if result.ok else 'ABORTED'}; "
          f"traps checked: {result.num_traps_checked}")
    assert sorted(result.messages) == sorted(messages), "messages lost!"

    stats = compact_state_dir(state_dir)
    print(f"compaction: dropped {stats.dropped}/{stats.examined} settled "
          f"records, {stats.bytes_before:,} -> {stats.bytes_after:,} bytes")
    print("all messages survived the crash — durability holds, "
          "disk stays bounded")
    shutil.rmtree(state_dir)


def chaos_round() -> None:
    """Resilience demo: the same round on a hostile network.

    ``net_faults`` (CLI ``--net-faults``) injects seed-deterministic
    faults below the RPC retry layer: here 5% of requests are dropped
    outright, 10% are delayed 2 ms, and 1% are delivered twice.  The
    retry loop re-sends dropped requests and request-ID dedup makes the
    duplicates apply exactly once, so the delivered output matches the
    calm-network run exactly.
    """
    print("\n--- chaos round ---")

    def run(net_faults=None):
        config = DeploymentConfig(
            num_servers=8, num_groups=2, group_size=3, variant="trap",
            iterations=4, message_size=24, crypto_group="TEST",
            net_faults=net_faults,
        )
        with AtomDeployment(config) as deployment:
            rng = DeterministicRng(b"quickstart-setup")
            rnd = deployment.start_round(round_id=0, rng=rng)
            client = Client(deployment.group, rng)
            for i in range(8):
                deployment.submit_trap(
                    rnd, f"chaotic message #{i}".encode(), entry_gid=i % 2,
                    client=client,
                )
            return deployment.run_round(rnd, DeterministicRng(b"quickstart-mix"))

    plan = "*:drop:5%;*:delay:2:10%;*:dup:1%"
    calm = run()
    stormy = run(net_faults=plan)
    print(f"chaos plan: {plan}")
    print(f"stormy round {'SUCCEEDED' if stormy.ok else 'ABORTED'}")
    assert stormy.ok and stormy.messages == calm.messages
    print("delivered output identical to the calm network — "
          "retries + idempotent delivery hold")


if __name__ == "__main__":
    main()
