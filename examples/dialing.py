#!/usr/bin/env python3
"""The dialing application (paper §5): Alice establishes a shared
secret with Bob through Atom, with differential-privacy dummy traffic
hiding how many calls each mailbox receives.

Run:  python examples/dialing.py
"""

from repro.apps.dialing import DialingService
from repro.core import DeploymentConfig
from repro.crypto.elgamal import ElGamalKeyPair


def main() -> None:
    config = DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=3,
        variant="trap",
        iterations=3,
        message_size=96,
        crypto_group="TEST",
    )
    service = DialingService(
        config=config, num_mailboxes=4, dummy_mu=2.0, dummy_scale=1.0
    )
    group = service.group

    # Long-term identity keys (exchanged out of band, e.g. a PKI).
    bob = ElGamalKeyPair.generate(group)
    carol = ElGamalKeyPair.generate(group)

    # Alice and Dave dial.
    requests = [
        service.make_request(b"alice-ephemeral-key", recipient_id=1, recipient_key=bob),
        service.make_request(b"dave-ephemeral-key", recipient_id=2, recipient_key=carol),
        service.make_request(b"erin-ephemeral-key", recipient_id=1, recipient_key=bob),
        service.make_request(b"frank-ephemeral-key", recipient_id=2, recipient_key=carol),
    ]

    result = service.run_round(0, requests)
    print("dialing round:", "ok" if result.ok else f"aborted ({result.abort_reason})")

    for name, rid, key in (("bob", 1, bob), ("carol", 2, carol)):
        downloaded = service.download(0, rid)
        opened = service.receive(0, rid, key)
        print(f"\n{name}: mailbox {rid} holds {len(downloaded)} entries "
              f"(real calls + DP dummies)")
        for sender_key in opened:
            print(f"  opened call from: {sender_key.decode()}")
        print(f"  -> {name} can now derive shared secrets with "
              f"{len(opened)} caller(s)")


if __name__ == "__main__":
    main()
