#!/usr/bin/env python3
"""The dialing application (paper §5), driven by the scenario engine:
a declarative all-dialing workload routes calls through Atom; each
recipient downloads their mailbox and opens the calls addressed to
their long-term key (derived, like everything else, from the scenario
seed).

Run:  python examples/dialing.py
"""

from repro.scenarios import ScenarioRunner, ScenarioSpec


def main() -> None:
    spec = ScenarioSpec.parse(
        {
            "name": "example-dialing",
            "rounds": 2,
            "seed": "example",
            "traffic": {
                "model": "constant",
                "users": 6,
                "rate": 4.0,
                "dialing_share": 1.0,  # every arrival is a call
            },
            "deployment": {
                "groups": 2,
                "group_size": 3,
                "variant": "trap",
                "iterations": 3,
                "message_size": 96,
                "group": "TEST",
            },
            "dialing": {"mailboxes": 4},
        }
    )
    runner = ScenarioRunner(spec)
    metrics = runner.run()
    print("dialing scenario:", "ok" if metrics.ok else "ABORTED")
    print(f"  {metrics.total_arrivals} calls offered, "
          f"{metrics.total_delivered} delivered")

    for round_id in range(spec.rounds):
        print(f"\nround {round_id} mailboxes:")
        for user in range(spec.traffic.users):
            opened = runner.receive(round_id, user)
            if not opened:
                continue
            callers = ", ".join(token.decode() for token in opened)
            print(f"  user {user} was dialed by: {callers}")
            print(f"    -> can now derive a shared secret with "
                  f"{len(opened)} caller(s)")


if __name__ == "__main__":
    main()
