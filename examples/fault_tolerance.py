#!/usr/bin/env python3
"""Fault tolerance and recovery (paper §4.5): many-trust groups survive
h-1 failures transparently; buddy groups recover from worse.

Run:  python examples/fault_tolerance.py
"""

from repro.core import AtomDeployment, DeploymentConfig
from repro.core.faults import BuddySystem
from repro.core.group import GroupStalled
from repro.core.server import AtomServer


def main() -> None:
    config = DeploymentConfig(
        num_servers=12,
        num_groups=2,
        group_size=4,
        variant="basic",
        mode="manytrust",
        h=2,                      # tolerate h-1 = 1 failure per group
        iterations=3,
        message_size=24,
        crypto_group="TEST",
    )
    deployment = AtomDeployment(config)
    messages = [f"msg {i}".encode() for i in range(4)]

    # --- h-1 failures: the round proceeds with k-(h-1) members ----------
    rnd = deployment.start_round(0)
    print(f"groups of k={config.group_size}, threshold "
          f"k-(h-1)={rnd.contexts[0].threshold}")
    rnd.contexts[0].servers[0].fail()
    print("server failed in group 0 — within the h-1 budget")
    for i, m in enumerate(messages):
        deployment.submit_plain(rnd, m, entry_gid=i % 2)
    result = deployment.run_round(rnd)
    print(f"round 0: {'ok' if result.ok else 'aborted'} — "
          f"{len(result.messages)} messages delivered\n")

    # --- beyond h-1: buddy-group recovery --------------------------------
    rnd = deployment.start_round(1)
    buddies = BuddySystem(deployment.group)
    buddies.escrow(rnd.contexts[0], buddy=rnd.contexts[1])
    print("group 0's key shares escrowed with buddy group 1")

    for i, m in enumerate(messages):
        deployment.submit_plain(rnd, m, entry_gid=i % 2)
    for server in rnd.contexts[0].servers[:2]:
        server.fail()
    print("two servers failed in group 0 — exceeds h-1 = 1")
    try:
        rnd.contexts[0].participants()
    except GroupStalled as stalled:
        print(f"group stalled: {stalled}")

    replacements = [
        AtomServer(server_id=100 + i, group=deployment.group) for i in range(4)
    ]
    rnd.contexts[0] = buddies.recover(rnd.contexts[0], replacements)
    print("replacement group reconstructed the key from buddy escrow")
    result = deployment.run_round(rnd)
    print(f"round 1 after recovery: {'ok' if result.ok else 'aborted'} — "
          f"{len(result.messages)} messages delivered")
    assert sorted(result.messages) == sorted(messages)


if __name__ == "__main__":
    main()
