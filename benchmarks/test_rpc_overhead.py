"""Resilience-layer overhead (``"rpc_overhead"`` in BENCH_fastexp.json).

The ResilientTransport wrapper sits on every RPC of every round —
stamping request IDs, picking per-kind deadlines, and (node-side)
consulting the dedup cache — so on the in-process fast path it must be
noise next to the crypto: the same seeded P-256 round is driven with
resilience on and off, and the overhead is asserted under 1.1x.  The
per-request wrapper cost is recorded alongside for trajectory
tracking.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.crypto.groups import DeterministicRng
from repro.net.envelopes import COORDINATOR, CommitLayer, wrap
from repro.net.resilience import ResilientTransport, RpcPolicy
from repro.net.transport import Transport

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastexp.json"
OVERHEAD_LIMIT = 1.1


def _update_bench(fields: dict) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.update(fields)
    data["unix_time"] = int(time.time())
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _build_config(resilience: bool):
    return DeploymentConfig(
        num_servers=6, num_groups=2, group_size=2, variant="trap",
        iterations=3, message_size=8, crypto_group="P256",
        resilience=resilience,
    )


def _run_round(resilience: bool) -> None:
    """The wal-overhead benchmark's seeded round, trap variant (the
    chattiest intake: trap pairs double the envelopes the wrapper must
    stamp and the nodes must dedup-check)."""
    with AtomDeployment(_build_config(resilience)) as dep:
        rng = DeterministicRng(b"rpc-round")
        rnd = dep.start_round(0, rng=rng)
        client = Client(dep.group, DeterministicRng(b"rpc-client"))
        for i in range(8):
            dep.submit_trap(rnd, b"m%d" % i, i % 2, client)
        dep.pad_round(rnd, DeterministicRng(b"rpc-pad"))
        result = dep.run_round(rnd, DeterministicRng(b"rpc-mix"))
        assert result.ok and len(result.messages) == 8


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class _SinkTransport(Transport):
    """Absorbs requests instantly: isolates the wrapper's own cost."""

    name = "sink"

    def register(self, round_id, node_id, node):
        pass

    def unregister_round(self, round_id):
        pass

    def request(self, env, timeout=None):
        return []


@pytest.mark.slow
def test_rpc_overhead(benchmark):
    # Warm both paths (fixed-base tables, imports) before timing;
    # best-of-5 min-vs-min cancels scheduler noise on 1-CPU runners
    # (same protocol as the wal_overhead benchmark).
    _run_round(resilience=False)
    _run_round(resilience=True)

    bare_s = _best_of(lambda: _run_round(resilience=False), 5)
    rpc_s = _best_of(lambda: _run_round(resilience=True), 5)
    ratio = rpc_s / bare_s

    # Raw wrapper cost per request on the success path (no retries).
    wrapped = ResilientTransport(
        _SinkTransport(), RpcPolicy.default(), seed=b"rpc-bench"
    )
    env = wrap(CommitLayer(layer=0), 0, COORDINATOR, 0)
    start = time.perf_counter()
    for _ in range(4096):
        env.req_id = 0  # fresh stamp every pass, like a real send
        wrapped.request(env)
    wrap_us = (time.perf_counter() - start) / 4096 * 1e6

    benchmark.pedantic(lambda: _run_round(resilience=True), rounds=1, iterations=1)

    print_table(
        "Resilience-layer overhead (seeded P-256 trap round, in-process)",
        ["metric", "value"],
        [
            ("bare transport round (s)", f"{bare_s:.3f}"),
            ("resilient round (s)", f"{rpc_s:.3f}"),
            ("resilient / bare", f"{ratio:.3f}x"),
            ("wrapper cost per request (us)", f"{wrap_us:.2f}"),
        ],
    )

    _update_bench(
        {
            "rpc_overhead": {
                "round_group": "P256",
                "variant": "trap",
                "bare_round_s": round(bare_s, 4),
                "resilient_round_s": round(rpc_s, 4),
                "overhead_ratio": round(ratio, 4),
                "wrapper_request_us": round(wrap_us, 2),
            }
        }
    )

    assert ratio <= OVERHEAD_LIMIT, (
        f"the resilience layer costs {ratio:.2f}x the bare transport; "
        f"request stamping + dedup must stay under {OVERHEAD_LIMIT}x "
        f"on the in-process path"
    )
