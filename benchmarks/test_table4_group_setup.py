"""Table 4: latency to create an anytrust group (DVSS key generation).

Runs the real DVSS protocol at each paper group size on the TOY group
(pure-Python big-int crypto; absolute numbers differ from the paper's
P-256/Go) and checks the quadratic growth that Table 4 exhibits
(~4x per size doubling), alongside the calibrated model's values.
The backend dimension runs the small sizes on the real NIST P-256
curve as well — same protocol, same quadratic shape, realistic
per-operation constants.
"""

import time

import pytest

from conftest import print_table
from repro.crypto.groups import get_group
from repro.crypto.secret_sharing import DvssProtocol
from repro.sim.mixnet import group_setup_latency

PAPER_MS = {4: 7.4, 8: 29.4, 16: 93.3, 32: 361.8, 64: 1432.1}
SIZES = [4, 8, 16, 32, 64]


def run_dvss(k: int, repeats: int = 1, group_name: str = "TOY") -> float:
    """Best-of-``repeats`` DVSS wall-clock (min damps scheduler noise,
    which dominates the sub-millisecond small-k runs)."""
    group = get_group(group_name)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        DvssProtocol(group, num_members=k, threshold=k).run()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize(
    "backend,k",
    [
        ("TOY", 4),
        ("TOY", 8),
        ("TOY", 16),
        pytest.param("TOY", 32, marks=pytest.mark.slow),
        pytest.param("TOY", 64, marks=pytest.mark.slow),
        ("P256", 4),
        ("P256", 8),
        pytest.param("P256", 16, marks=pytest.mark.slow),
    ],
)
def test_group_setup(benchmark, backend, k):
    if k <= 16 and backend == "TOY":
        benchmark(lambda: run_dvss(k, group_name=backend))
    else:
        benchmark.pedantic(
            lambda: run_dvss(k, group_name=backend), rounds=1, iterations=1
        )


@pytest.mark.slow
def test_table4_report(benchmark):
    measured = {k: run_dvss(k, repeats=3 if k <= 16 else 1) * 1000 for k in SIZES}
    model = {k: group_setup_latency(k) * 1000 for k in SIZES}
    benchmark.pedantic(lambda: run_dvss(8), rounds=1, iterations=1)

    rows = [
        (k, PAPER_MS[k], f"{model[k]:.1f}", f"{measured[k]:.1f}")
        for k in SIZES
    ]
    print_table(
        "Table 4: anytrust group setup latency (ms)",
        ["group size", "paper", "model", "ours (TOY group)"],
        rows,
    )

    # Shape: superlinear growth, ~4x per doubling (paper shows 4.0x /
    # 3.2x / 3.9x / 4.0x steps).  Our DVSS also publishes per-member
    # share images (k^2 extra exponentiations), so the largest step can
    # exceed 4x — the shape claim is "quadratic-or-worse, not linear".
    # Per-step bands are generous because small-k runs are sub-ms on
    # the TOY group and timer noise is real even with best-of-3.
    for small, large in zip(SIZES, SIZES[1:]):
        ratio = measured[large] / measured[small]
        assert 1.5 < ratio < 20.0, f"setup growth {small}->{large} was {ratio:.1f}x"
    # Cumulative shape over the full 4->64 span: four doublings of a
    # quadratic-or-worse cost must grow far faster than linear (16x).
    overall = measured[64] / measured[4]
    assert overall > 25.0, f"setup growth 4->64 was only {overall:.1f}x"
    # Paper's §4.5 claim: setup under two seconds for k = 33 (the
    # deployment group size); checked against the calibrated model.
    assert group_setup_latency(33) * 1000 < 2000
