"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper: it runs
the relevant code (real crypto for microbenchmarks, the calibrated
simulator for cluster-scale experiments), prints the same rows/series
the paper reports next to the paper's published values, and asserts the
*shape* claims (who wins, by what factor, where crossovers fall).
"""

import pytest


def print_table(title: str, headers, rows) -> None:
    """Render a comparison table into the captured bench output."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
