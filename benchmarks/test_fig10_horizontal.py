"""Figure 10: speed-up of Atom networks of varying sizes relative to a
128-server network (one million microblogging messages).

"The network speeds up linearly with the number of servers. That is, an
Atom network with 1,024 servers is twice as fast as one with 512
servers." Paper anchors: 3.81 hr / 1.89 hr / 0.94 hr / 0.47 hr.
"""

import pytest

from conftest import print_table
from repro.sim import AtomSimulator, SimConfig

SERVER_COUNTS = [128, 256, 512, 1024]
PAPER_HOURS = {128: 3.81, 256: 1.89, 512: 0.94, 1024: 0.47}
MESSAGES = 2 ** 20


def test_fig10_sweep(benchmark):
    benchmark(
        lambda: AtomSimulator(
            SimConfig(num_servers=1024, num_groups=1024)
        ).simulate_round(MESSAGES)
    )

    hours = {}
    for n in SERVER_COUNTS:
        sim = AtomSimulator(SimConfig(num_servers=n, num_groups=n))
        hours[n] = sim.simulate_round(MESSAGES).total_hours

    base = hours[128]
    rows = [
        (
            n,
            f"{hours[n]:.2f}",
            PAPER_HOURS[n],
            f"{base / hours[n]:.2f}x",
            f"{PAPER_HOURS[128] / PAPER_HOURS[n]:.2f}x",
        )
        for n in SERVER_COUNTS
    ]
    print_table(
        "Figure 10: horizontal scaling, 1M microblog messages",
        ["servers", "ours (hr)", "paper (hr)", "our speed-up", "paper speed-up"],
        rows,
    )

    # Shape: linear speed-up — each doubling of servers halves latency.
    for small, large in zip(SERVER_COUNTS, SERVER_COUNTS[1:]):
        assert hours[small] / hours[large] == pytest.approx(2.0, rel=0.2)
    # Absolute agreement within 15% at every size.
    for n in SERVER_COUNTS:
        assert hours[n] == pytest.approx(PAPER_HOURS[n], rel=0.15)
