"""Figure 10: speed-up of Atom networks of varying sizes relative to a
128-server network (one million microblogging messages).

"The network speeds up linearly with the number of servers. That is, an
Atom network with 1,024 servers is twice as fast as one with 512
servers." Paper anchors: 3.81 hr / 1.89 hr / 0.94 hr / 0.47 hr.

Alongside the calibrated simulator sweep, ``test_fleet_scaling``
measures the real thing at toy scale: the same seeded stream sharded
over 1, 2 and 4 ``repro serve`` OS processes (``"fleet_scaling"`` in
BENCH_fastexp.json).  Each process mixes its groups on its own worker,
so MIX fans out as MIX_PENDING across processes — the paper's
horizontal axis, minus 1000 machines.
"""

import json
import socket
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.sim import AtomSimulator, SimConfig

SERVER_COUNTS = [128, 256, 512, 1024]
PAPER_HOURS = {128: 3.81, 256: 1.89, 512: 0.94, 1024: 0.47}
MESSAGES = 2 ** 20

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastexp.json"


def _update_bench(fields: dict) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.update(fields)
    data["unix_time"] = int(time.time())
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_fig10_sweep(benchmark):
    benchmark(
        lambda: AtomSimulator(
            SimConfig(num_servers=1024, num_groups=1024)
        ).simulate_round(MESSAGES)
    )

    hours = {}
    for n in SERVER_COUNTS:
        sim = AtomSimulator(SimConfig(num_servers=n, num_groups=n))
        hours[n] = sim.simulate_round(MESSAGES).total_hours

    base = hours[128]
    rows = [
        (
            n,
            f"{hours[n]:.2f}",
            PAPER_HOURS[n],
            f"{base / hours[n]:.2f}x",
            f"{PAPER_HOURS[128] / PAPER_HOURS[n]:.2f}x",
        )
        for n in SERVER_COUNTS
    ]
    print_table(
        "Figure 10: horizontal scaling, 1M microblog messages",
        ["servers", "ours (hr)", "paper (hr)", "our speed-up", "paper speed-up"],
        rows,
    )

    # Shape: linear speed-up — each doubling of servers halves latency.
    for small, large in zip(SERVER_COUNTS, SERVER_COUNTS[1:]):
        assert hours[small] / hours[large] == pytest.approx(2.0, rel=0.2)
    # Absolute agreement within 15% at every size.
    for n in SERVER_COUNTS:
        assert hours[n] == pytest.approx(PAPER_HOURS[n], rel=0.15)


# -- measured multi-process scaling ----------------------------------

FLEET_PROCESSES = [1, 2, 4]


def _free_ports(n):
    socks = [socket.create_server(("127.0.0.1", 0)) for _ in range(n)]
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


def _fleet_config():
    from repro.core import DeploymentConfig

    return DeploymentConfig(
        num_servers=8,
        num_groups=4,
        group_size=2,
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
    )


def _fleet_stream(config):
    from repro.core.pipeline import StreamConfig, StreamEngine

    engine = StreamEngine(
        config,
        stream=StreamConfig(
            rounds=2, users_per_round=8, seed=b"fleet-scaling"
        ),
    )
    with engine:
        return engine.run()


@pytest.mark.slow
def test_fleet_scaling(benchmark, tmp_path):
    """Measured throughput of the same seeded stream over a real fleet
    of 1, 2 and 4 server processes.  At toy scale the RPC hop — not the
    crypto — dominates, so the assertions are existence-level (every
    fleet completes, delivers the baseline payload, and has positive
    throughput); the per-width messages/s trajectory is what the JSON
    record is for.
    """
    from repro.fleet.controller import FleetController
    from repro.fleet.plan import DeploymentPlan

    baseline = _fleet_stream(_fleet_config())
    assert baseline.ok
    payload = [sorted(r.messages) for r in baseline.rounds]
    total_messages = sum(len(r.messages) for r in baseline.rounds)

    measured = {}
    for width in FLEET_PROCESSES:
        root = tmp_path / f"fleet-{width}"
        root.mkdir()
        plan = DeploymentPlan.build(
            _fleet_config(), width, ports=_free_ports(width),
            state_root=str(root / "state"),
        ).save(root / "plan.json")
        controller = FleetController(plan, runtime_dir=str(root / "run"))
        controller.up()
        try:
            start = time.perf_counter()
            report = _fleet_stream(plan.engine_config())
            elapsed = time.perf_counter() - start
        finally:
            controller.down()
        assert report.ok
        assert [sorted(r.messages) for r in report.rounds] == payload
        measured[width] = {
            "stream_s": round(elapsed, 4),
            "messages_per_s": round(total_messages / elapsed, 2),
        }

    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # timings above; keep the fixture satisfied

    print_table(
        "Fleet scaling: 2-round TOY stream, 4 groups over N processes",
        ["processes", "stream (s)", "messages/s"],
        [
            (w, measured[w]["stream_s"], measured[w]["messages_per_s"])
            for w in FLEET_PROCESSES
        ],
    )

    _update_bench(
        {
            "fleet_scaling": {
                "crypto_group": "TOY",
                "num_groups": 4,
                "rounds": 2,
                "users_per_round": 8,
                "processes": {str(w): measured[w] for w in FLEET_PROCESSES},
            }
        }
    )

    for width in FLEET_PROCESSES:
        assert measured[width]["messages_per_s"] > 0
