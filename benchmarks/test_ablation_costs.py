"""Ablations and §7 deployment costs.

Covers the design choices DESIGN.md calls out:
- square vs iterated-butterfly topology (depth/latency trade, §3)
- staggered vs naive server placement (§4.7)
- fault-tolerance parameter h vs group size/latency (§4.5)
- §7 deployment cost estimates.
"""

import pytest

from conftest import print_table
from repro.analysis.costs import estimate_server_cost
from repro.analysis.groups_math import minimum_group_size
from repro.sim import AtomSimulator, SimConfig
from repro.topology import IteratedButterflyNetwork, SquareNetwork


def test_ablation_topology_depth(benchmark):
    """Square's O(1)-depth beats the butterfly's O(log^2) depth — the
    reason the paper evaluates the square network."""
    benchmark(lambda: SquareNetwork(width=1024, depth=10).validate)

    rows = []
    for log_groups in (5, 8, 10):
        groups = 2 ** log_groups
        square = SquareNetwork(width=groups, depth=10)
        butterfly = IteratedButterflyNetwork(log_width=log_groups)
        rows.append((groups, square.depth, butterfly.depth))
    print_table(
        "Ablation: mixing iterations by topology",
        ["groups", "square (T)", "butterfly (T)"],
        rows,
    )
    assert SquareNetwork(width=1024, depth=10).depth < IteratedButterflyNetwork(
        log_width=10
    ).depth


def test_ablation_staggering(benchmark):
    """§4.7: staggering keeps every server busy."""
    on = AtomSimulator(SimConfig(staggered=True))
    off = AtomSimulator(SimConfig(staggered=False))
    benchmark(lambda: on.simulate_round(2 ** 22))

    rows = []
    for m in (2 ** 20, 2 ** 22, 2 ** 24):
        t_on = on.simulate_round(m).total_s
        t_off = off.simulate_round(m).total_s
        rows.append((f"{m/1e6:.0f}M", f"{t_on:.0f}", f"{t_off:.0f}", f"{t_off/t_on:.1f}x"))
    print_table(
        "Ablation: staggered vs naive placement (round seconds)",
        ["messages", "staggered", "naive", "naive penalty"],
        rows,
    )
    # At capacity-bound loads the naive layout is strictly worse.
    assert rows[-1][1] != rows[-1][2]


def test_ablation_fault_tolerance_h(benchmark):
    """§4.5: raising h grows groups slightly; latency only grows via the
    k - (h-1) active servers, which stays constant by construction."""
    benchmark(lambda: minimum_group_size(0.2, 1024, h=3))

    rows = []
    for h in (1, 2, 3, 5):
        k = minimum_group_size(0.2, 1024, h)
        active = k - (h - 1)
        sim = AtomSimulator(SimConfig(group_size=active))
        rows.append((h, k, active, f"{sim.latency_minutes(2 ** 20):.1f}"))
    print_table(
        "Ablation: fault tolerance h vs group size and latency (1M msgs)",
        ["h", "group size k", "active k-(h-1)", "latency (min)"],
        rows,
    )
    # The paper's point: the active count (and thus latency) barely moves.
    latencies = [float(r[3]) for r in rows]
    assert max(latencies) / min(latencies) < 1.35


def test_section7_costs(benchmark):
    benchmark(lambda: estimate_server_cost(4))

    rows = []
    for cores in (4, 36):
        est = estimate_server_cost(cores)
        rows.append(
            (
                cores,
                f"{est.reencrypt_msgs_per_s:.0f}",
                f"{est.shuffle_msgs_per_s:.0f}",
                f"{est.bandwidth_bytes_per_s/1e3:.0f} KB/s",
                f"${est.compute_usd_month:.0f}",
                f"${est.bandwidth_usd_month:.2f}",
            )
        )
    print_table(
        "§7 deployment costs per server-month",
        ["cores", "reenc/s", "shuffle/s", "bandwidth", "compute", "bw cost"],
        rows,
    )
    print("paper: 4-core $146 + ~$7.20; 36-core $1,165 + ~$65")

    est4 = estimate_server_cost(4)
    assert est4.compute_usd_month == pytest.approx(146.0)
    assert est4.bandwidth_usd_month == pytest.approx(7.20, rel=0.1)


def test_ablation_nizk_rounds(benchmark):
    """Our cut-and-choose shuffle proof: soundness/latency trade-off
    (the knob standing in for Neff-proof batching choices)."""
    import time

    from repro.crypto.elgamal import AtomElGamal
    from repro.crypto.groups import get_group
    from repro.crypto.shuffle_proof import prove_shuffle, verify_shuffle

    group = get_group("TOY")
    scheme = AtomElGamal(group)
    kp = scheme.keygen()
    cts = [scheme.encrypt(kp.public, group.encode(bytes([i])))[0] for i in range(16)]
    shuffled, perm, rands = scheme.shuffle(kp.public, cts)

    benchmark(lambda: prove_shuffle(group, kp.public, cts, shuffled, perm, rands, 8))

    rows = []
    for rounds in (4, 8, 16, 32):
        start = time.perf_counter()
        proof = prove_shuffle(group, kp.public, cts, shuffled, perm, rands, rounds)
        prove_t = time.perf_counter() - start
        start = time.perf_counter()
        assert verify_shuffle(group, kp.public, cts, shuffled, proof, rounds)
        verify_t = time.perf_counter() - start
        rows.append(
            (rounds, f"2^-{rounds}", f"{prove_t*1e3:.1f}", f"{verify_t*1e3:.1f}")
        )
    print_table(
        "Ablation: shuffle-proof rounds vs soundness and cost (16 msgs, TOY)",
        ["rounds", "soundness", "prove (ms)", "verify (ms)"],
        rows,
    )
    # Cost linear in rounds.
    assert float(rows[3][2]) > 2.0 * float(rows[1][2])
