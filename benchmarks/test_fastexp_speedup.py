"""Fast-exponentiation engine speedups (BENCH_fastexp.json).

Two measurements, both recorded in ``BENCH_fastexp.json`` at the repo
root so later scaling PRs can track the trajectory:

1. **Batched shuffle-proof verification** on MODP2048.  Verifying a
   cut-and-choose shuffle proof element-wise costs ``2 * rounds * n``
   full-size modular exponentiations — the dominant per-member cost of
   Algorithm 2 (paper §6, Table 3).  The batched verifier folds each
   round into two random-linear-combination multi-exponentiations with
   128-bit weights; asserted >= 3x (in practice far larger).

2. **The backend dimension**: the paper's evaluation runs on NIST
   P-256, not a 2048-bit MODP group.  The ``P256`` backend's 256-bit
   scalars must make the run-stream hot path — encrypt and
   re-encrypt — at least 4x faster than MODP2048 (in practice ~10-25x).
"""

import json
import secrets
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.crypto.elgamal import AtomCiphertext, AtomElGamal, ElGamalKeyPair
from repro.crypto.fastexp import FixedBaseExp
from repro.crypto.groups import DeterministicRng, GroupElement, get_group
from repro.crypto.shuffle_proof import _challenge_bits, prove_shuffle, verify_shuffle

N_ELEMENTS = 12
ROUNDS = 3
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastexp.json"


def _update_bench(fields: dict) -> None:
    """Merge ``fields`` into BENCH_fastexp.json (tests run in any order
    and each owns its own keys)."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.update(fields)
    data["unix_time"] = int(time.time())
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _seed_style_verify(group, public_key, inputs, outputs, proof):
    """The seed's element-wise verification path: one generic ``pow``
    per exponentiation, no fixed-base tables — the "before" baseline
    that ``BENCH_fastexp.json`` tracks the fast path against."""
    intermediates = [r.intermediate for r in proof.rounds]
    bits = _challenge_bits(group, public_key, inputs, outputs, intermediates, ROUNDS)
    if list(proof.challenge_bits) != bits:
        return False
    p, q = group.p, group.q
    for rnd, bit in zip(proof.rounds, bits):
        source = inputs if bit == 0 else rnd.intermediate
        target = rnd.intermediate if bit == 0 else outputs
        for i, (perm_i, r) in enumerate(zip(rnd.opened_perm, rnd.opened_rands)):
            src = source[perm_i]
            expect = AtomCiphertext(
                R=GroupElement(pow(group.params.g, r % q, p), group) * src.R,
                c=src.c * GroupElement(pow(public_key.value, r % q, p), group),
                Y=None,
            )
            if expect != target[i]:
                return False
    return True


def _build_proof(group):
    rng = DeterministicRng(b"bench-fastexp")
    scheme = AtomElGamal(group)
    keys = ElGamalKeyPair.generate(group, rng)
    inputs = []
    for i in range(N_ELEMENTS):
        message = group.encode(b"m%02d" % i)
        ct, _ = scheme.encrypt(keys.public, message, rng)
        inputs.append(ct)
    outputs, perm, rands = scheme.shuffle(keys.public, inputs, rng)
    proof = prove_shuffle(
        group, keys.public, inputs, outputs, perm, rands, rounds=ROUNDS, rng=rng
    )
    return keys.public, inputs, outputs, proof


@pytest.mark.slow
def test_fastexp_speedup(benchmark):
    group = get_group("MODP2048")

    # -- fixed-base microbenchmark (Table 3's exponentiation row) ------
    exponents = [secrets.randbelow(group.q) for _ in range(8)]
    start = time.perf_counter()
    table = FixedBaseExp(group.p, group.q, group.params.g)
    table_build_s = time.perf_counter() - start
    start = time.perf_counter()
    for e in exponents:
        pow(group.params.g, e, group.p)
    naive_pow_s = (time.perf_counter() - start) / len(exponents)
    start = time.perf_counter()
    for e in exponents:
        table.pow(e)
    fixed_pow_s = (time.perf_counter() - start) / len(exponents)
    assert all(table.pow(e) == pow(group.params.g, e, group.p) for e in exponents)

    # -- batch vs element-wise shuffle-proof verification --------------
    public_key, inputs, outputs, proof = _build_proof(group)

    start = time.perf_counter()
    assert _seed_style_verify(group, public_key, inputs, outputs, proof)
    before_s = time.perf_counter() - start

    start = time.perf_counter()
    assert verify_shuffle(
        group, public_key, inputs, outputs, proof, rounds=ROUNDS, batched=False
    )
    elementwise_fb_s = time.perf_counter() - start

    def batched():
        assert verify_shuffle(
            group, public_key, inputs, outputs, proof, rounds=ROUNDS, batched=True
        )

    batched()  # warm the fixed-base tables (g, pk) like a real round
    benchmark.pedantic(batched, rounds=3, iterations=1)
    batched_s = benchmark.stats.stats.min

    speedup = before_s / batched_s
    fixed_speedup = naive_pow_s / fixed_pow_s
    print_table(
        "Fast-exponentiation engine (MODP2048)",
        ["metric", "before (generic pow)", "after", "speedup"],
        [
            (
                "g^r (ms)",
                f"{naive_pow_s * 1000:.2f}",
                f"{fixed_pow_s * 1000:.2f}",
                f"{fixed_speedup:.1f}x",
            ),
            (
                f"verify shuffle n={N_ELEMENTS} rounds={ROUNDS} (s)",
                f"{before_s:.3f}",
                f"{batched_s:.3f}",
                f"{speedup:.1f}x",
            ),
            (
                "  (element-wise + fixed-base middle point, s)",
                "",
                f"{elementwise_fb_s:.3f}",
                f"{before_s / elementwise_fb_s:.1f}x",
            ),
        ],
    )

    _update_bench(
        {
            "bench": "fastexp",
            "group": "MODP2048",
            "n_elements": N_ELEMENTS,
            "proof_rounds": ROUNDS,
            "verify_before_elementwise_pow_s": round(before_s, 6),
            "verify_elementwise_fixed_base_s": round(elementwise_fb_s, 6),
            "verify_batched_s": round(batched_s, 6),
            "verify_speedup": round(speedup, 2),
            "pow_naive_ms": round(naive_pow_s * 1000, 4),
            "pow_fixed_base_ms": round(fixed_pow_s * 1000, 4),
            "pow_speedup": round(fixed_speedup, 2),
            "fixed_base_table_build_ms": round(table_build_s * 1000, 2),
        }
    )

    assert speedup >= 3.0, f"batched verification only {speedup:.1f}x faster"


def _time_primitive(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
def test_backend_primitive_speedup(benchmark):
    """The P-256 backend dimension: encrypt / re-encrypt per backend.

    The paper's Table 3 numbers are measured on NIST P-256; our
    MODP2048 substitute pays ~8x-wider exponentiations.  This records
    both backends' warm-cache primitive costs in ``BENCH_fastexp.json``
    under ``"backends"`` and asserts the curve's >= 4x win on the
    encrypt and re-encrypt hot path.
    """
    rng = DeterministicRng(b"bench-backends")
    results = {}
    for name in ("MODP2048", "P256"):
        group = get_group(name)
        scheme = AtomElGamal(group)
        kp = ElGamalKeyPair.generate(group, rng)
        nxt = ElGamalKeyPair.generate(group, rng)
        message = group.encode(b"backend bench")
        ct, _ = scheme.encrypt(kp.public, message, rng)
        # Warm the fixed-base tables (g and both public keys) the way a
        # real deployment's first few operations would.
        for _ in range(4):
            scheme.encrypt(kp.public, message, rng)
            scheme.reencrypt(kp.secret, nxt.public, ct, rng)
        results[name] = {
            "encrypt_ms": _time_primitive(
                lambda: scheme.encrypt(kp.public, message, rng), 20
            )
            * 1000,
            "reencrypt_ms": _time_primitive(
                lambda: scheme.reencrypt(kp.secret, nxt.public, ct, rng), 20
            )
            * 1000,
            "g_pow_ms": _time_primitive(
                lambda: group.g_pow(group.random_scalar(rng)), 20
            )
            * 1000,
            "encode_ms": _time_primitive(lambda: group.encode(b"bench"), 20) * 1000,
        }

    benchmark.pedantic(
        lambda: AtomElGamal(get_group("P256")).encrypt(
            get_group("P256").g, get_group("P256").encode(b"x"), rng
        ),
        rounds=3,
        iterations=1,
    )

    modp, p256 = results["MODP2048"], results["P256"]
    speedups = {
        metric: modp[metric] / p256[metric]
        for metric in ("encrypt_ms", "reencrypt_ms", "g_pow_ms", "encode_ms")
    }
    print_table(
        "Backend dimension: MODP2048 vs P-256 (warm caches)",
        ["primitive", "MODP2048 (ms)", "P256 (ms)", "speedup"],
        [
            (
                metric[:-3],
                f"{modp[metric]:.3f}",
                f"{p256[metric]:.3f}",
                f"{speedups[metric]:.1f}x",
            )
            for metric in speedups
        ],
    )

    _update_bench(
        {
            "backends": {
                "MODP2048": {k: round(v, 4) for k, v in modp.items()},
                "P256": {k: round(v, 4) for k, v in p256.items()},
                "p256_encrypt_speedup": round(speedups["encrypt_ms"], 2),
                "p256_reencrypt_speedup": round(speedups["reencrypt_ms"], 2),
            }
        }
    )

    assert speedups["encrypt_ms"] >= 4.0, (
        f"P-256 encrypt only {speedups['encrypt_ms']:.1f}x faster than MODP2048"
    )
    assert speedups["reencrypt_ms"] >= 4.0, (
        f"P-256 re-encrypt only {speedups['reencrypt_ms']:.1f}x faster than MODP2048"
    )


@pytest.mark.slow
def test_envelope_overhead(benchmark):
    """The message-driven node API must be (nearly) free in-process.

    Records two things in ``BENCH_fastexp.json`` under
    ``"envelope_overhead"``:

    1. serialize + deserialize cost of one mix-layer hand-off batch on
       MODP2048 (what the TCP transport pays per MIX_BATCH envelope);
    2. wall clock of one full round driven through the coordinator on
       the zero-copy ``InProcessTransport`` vs the pre-refactor direct
       drive (submission verify + ``ctx.mix`` loop + plain exit,
       replicated here as the baseline), asserted within 10%.
    """
    from repro.core import AtomDeployment, Client, DeploymentConfig
    from repro.crypto.vector import CiphertextVector
    from repro.net import envelopes as ev
    from repro.net.envelopes import Envelope, wrap

    # -- 1. wire codec cost per mix-layer batch (MODP2048) -------------
    group = get_group("MODP2048")
    rng = DeterministicRng(b"bench-envelope")
    scheme = AtomElGamal(group)
    keys = ElGamalKeyPair.generate(group, rng)
    vectors = []
    for i in range(8):
        ct, _ = scheme.encrypt(keys.public, group.encode(b"b%02d" % i), rng)
        vectors.append(CiphertextVector((ct,)))
    batch_env = wrap(
        ev.MixBatch(layer=1, vectors=tuple(vectors)), 0, 0, 1
    )
    serialize_s = _time_primitive(lambda: batch_env.to_bytes(group), 20)
    raw = batch_env.to_bytes(group)
    deserialize_s = _time_primitive(
        lambda: Envelope.from_bytes(raw, group), 20
    )

    # -- 2. inproc coordinator round vs the pre-refactor direct drive --
    def build_config():
        # Pinned to the object plane: the direct-drive baseline below
        # is an object-graph loop, so both sides must move objects for
        # the ratio to isolate the envelope/coordinator overhead.  The
        # batch plane's cost profile is tracked separately by
        # test_streaming_rss ("streaming_rss" in BENCH_fastexp.json).
        return DeploymentConfig(
            num_servers=6, num_groups=2, group_size=2, variant="basic",
            iterations=3, message_size=8, crypto_group="P256",
            data_plane="object",
        )

    def run_envelope_round() -> None:
        with AtomDeployment(build_config()) as dep:
            rnd = dep.start_round(0, rng=DeterministicRng(b"env-round"))
            client = Client(dep.group, DeterministicRng(b"env-client"))
            for i in range(8):
                dep.submit_plain(rnd, b"m%d" % i, i % 2, client)
            result = dep.run_round(rnd, DeterministicRng(b"env-mix"))
            assert result.ok and len(result.messages) == 8

    def run_direct_round() -> None:
        """The seed-era drive: verify at entry, call ctx.mix directly
        per layer, read the plaintexts — no envelopes, no coordinator."""
        from repro.core import messages as fmt
        from repro.crypto.vector import plaintext_of

        with AtomDeployment(build_config()) as dep:
            rnd = dep.start_round(0, rng=DeterministicRng(b"env-round"))
            client = Client(dep.group, DeterministicRng(b"env-client"))
            holdings = {ctx.gid: [] for ctx in rnd.contexts}
            for i in range(8):
                gid = i % 2
                sub = client.prepare_plain(
                    b"m%d" % i, rnd.context(gid).public_key, gid,
                    dep.spec.payload_size,
                )
                assert sub.verify(dep.group, rnd.context(gid).public_key, gid)
                holdings[gid].append(sub.vector)
            mix_rng = DeterministicRng(b"env-mix")
            topo = rnd.topology
            for layer in range(topo.depth):
                last = layer == topo.depth - 1
                incoming = {ctx.gid: [] for ctx in rnd.contexts}
                for ctx in rnd.contexts:
                    if last:
                        successors, next_keys = [ctx.gid], [None]
                    else:
                        successors = topo.successors(layer, ctx.gid)
                        next_keys = [
                            rnd.context(s).public_key for s in successors
                        ]
                    batches, _ = ctx.mix(
                        holdings[ctx.gid], next_keys, verify=False,
                        rng=DeterministicRng(mix_rng.randbytes(32)),
                    )
                    for succ, batch in zip(successors, batches):
                        incoming[succ].extend(batch)
                holdings = incoming
            messages = []
            for gid in sorted(holdings):
                for vec in holdings[gid]:
                    payload = plaintext_of(rnd.context(gid).scheme, vec)
                    if not fmt.is_dummy_payload(payload):
                        messages.append(fmt.parse_plain_payload(payload))
            assert len(messages) == 8

    # Warm both paths (fixed-base tables, pyc) before timing, then
    # compare best-of-5: min-vs-min cancels scheduler noise on shared
    # 1-CPU runners, where a median over ~0.2 s samples still flakes.
    run_envelope_round()
    run_direct_round()
    envelope_s = min(_time_primitive(run_envelope_round, 1) for _ in range(5))
    direct_s = min(_time_primitive(run_direct_round, 1) for _ in range(5))
    ratio = envelope_s / direct_s

    benchmark.pedantic(lambda: batch_env.to_bytes(group), rounds=3, iterations=1)

    print_table(
        "Envelope overhead (wire codec on MODP2048; round on P-256)",
        ["metric", "value"],
        [
            ("serialize MIX_BATCH (8 vectors, ms)", f"{serialize_s * 1e3:.3f}"),
            ("deserialize MIX_BATCH (ms)", f"{deserialize_s * 1e3:.3f}"),
            ("envelope bytes per batch", f"{len(raw):,}"),
            ("inproc coordinator round (s)", f"{envelope_s:.3f}"),
            ("direct-drive round (s)", f"{direct_s:.3f}"),
            ("inproc / direct", f"{ratio:.3f}x"),
        ],
    )

    _update_bench(
        {
            "envelope_overhead": {
                "group": "MODP2048",
                "batch_vectors": 8,
                "serialize_ms_per_batch": round(serialize_s * 1e3, 4),
                "deserialize_ms_per_batch": round(deserialize_s * 1e3, 4),
                "batch_bytes": len(raw),
                "round_group": "P256",
                "inproc_round_s": round(envelope_s, 4),
                "direct_round_s": round(direct_s, 4),
                "inproc_overhead_ratio": round(ratio, 4),
            }
        }
    )

    assert ratio <= 1.10, (
        f"the in-process envelope path costs {ratio:.2f}x the direct "
        f"drive; the zero-copy transport must stay within 10%"
    )


@pytest.mark.slow
def test_batched_rejects_tampering_modp2048(benchmark):
    """The fast path keeps soundness: a mauled output vector fails."""
    group = get_group("MODP2048")
    public_key, inputs, outputs, proof = _build_proof(group)
    tampered = list(outputs)
    tampered[0], tampered[1] = tampered[1], tampered[0]
    benchmark.pedantic(
        lambda: verify_shuffle(
            group, public_key, inputs, tampered, proof, rounds=ROUNDS
        ),
        rounds=1,
        iterations=1,
    )
    assert not verify_shuffle(
        group, public_key, inputs, tampered, proof, rounds=ROUNDS
    )
