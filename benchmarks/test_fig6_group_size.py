"""Figure 6: time per mixing iteration vs group size (1,024 messages).

"For both schemes, the mixing time increases linearly with the group
size, since each additional server adds another serial set of shuffling
and reencryption operations."
"""

import pytest

from conftest import print_table
from repro.sim.costmodel import PrimitiveCosts
from repro.sim.machines import MachineSpec
from repro.sim.mixnet import GroupMixModel
from repro.sim.network import NetworkModel
from repro.sim.runner import DEFAULT_CALIBRATION

GROUP_SIZES = [4, 8, 16, 32, 64]
MESSAGES = 1024


def model_for(k: int, variant: str) -> GroupMixModel:
    return GroupMixModel(
        PrimitiveCosts.paper_table3(),
        NetworkModel(),
        [MachineSpec(4, 100.0)] * k,
        variant=variant,
    )


def test_fig6_sweep(benchmark):
    benchmark(lambda: model_for(32, "trap").iteration_time(2 * MESSAGES))

    rows = []
    nizk_series, trap_series = [], []
    for k in GROUP_SIZES:
        t_nizk = model_for(k, "nizk").iteration_time(MESSAGES) * DEFAULT_CALIBRATION
        t_trap = model_for(k, "trap").iteration_time(2 * MESSAGES) * DEFAULT_CALIBRATION
        nizk_series.append(t_nizk)
        trap_series.append(t_trap)
        rows.append((k, f"{t_nizk:.1f}", f"{t_trap:.1f}"))
    print_table(
        "Figure 6: time per mixing iteration (s), 1,024 messages",
        ["group size", "NIZK", "trap"],
        rows,
    )
    print("paper anchors: NIZK@64 ~250s; linear in k for both variants")

    # Shape: linear in group size (doubling k doubles the time).
    for series in (nizk_series, trap_series):
        for a, b in zip(series, series[1:]):
            assert b / a == pytest.approx(2.0, rel=0.25)
    # Shape: NIZK above trap at every size.
    assert all(n > t for n, t in zip(nizk_series, trap_series))
