"""Figure 5: time per mixing iteration vs number of messages
(one group of 32 servers; NIZK vs trap).

The trap series accounts for trap doubling exactly as the paper does
("if there are 1,024 groups and 2^20 messages, each group would handle
1,024 messages in the NIZK variant and 2,048 in the trap variant").
"""

import pytest

from conftest import print_table
from repro.sim.costmodel import PrimitiveCosts
from repro.sim.machines import MachineSpec
from repro.sim.mixnet import GroupMixModel
from repro.sim.network import NetworkModel
from repro.sim.runner import DEFAULT_CALIBRATION

MESSAGE_COUNTS = [128, 512, 1024, 4096, 16384]
K = 32


def models():
    costs = PrimitiveCosts.paper_table3()
    machines = [MachineSpec(4, 100.0)] * K
    net = NetworkModel()
    return (
        GroupMixModel(costs, net, machines, variant="nizk"),
        GroupMixModel(costs, net, machines, variant="trap"),
    )


def test_fig5_sweep(benchmark):
    nizk, trap = models()
    benchmark(lambda: trap.iteration_time(2 * 16384))

    rows = []
    nizk_series, trap_series = [], []
    for n in MESSAGE_COUNTS:
        t_nizk = nizk.iteration_time(n) * DEFAULT_CALIBRATION
        t_trap = trap.iteration_time(2 * n) * DEFAULT_CALIBRATION
        nizk_series.append(t_nizk)
        trap_series.append(t_trap)
        rows.append((n, f"{t_nizk:.1f}", f"{t_trap:.1f}", f"{t_nizk / t_trap:.1f}x"))
    print_table(
        "Figure 5: time per mixing iteration (s), 32-server group",
        ["messages", "NIZK", "trap", "NIZK/trap"],
        rows,
    )
    print("paper anchors: NIZK@16384 ~3000s, trap@16384 ~750s, ratio ~4x")

    # Shape: linear growth in messages for both variants.
    assert nizk_series[-1] / nizk_series[2] == pytest.approx(16, rel=0.2)
    assert trap_series[-1] / trap_series[2] == pytest.approx(16, rel=0.25)
    # Shape: NIZK about 4x the trap variant (paper: "about four times").
    ratio = nizk_series[-1] / trap_series[-1]
    assert 2.5 < ratio < 6.0
