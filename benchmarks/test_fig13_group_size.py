"""Figure 13 (Appendix B): required group size k to keep every group's
failure probability below 2^-64 as a function of h (f = 0.2, G = 1024).

The curve rises from k = 32 at h = 1 to ~70 at h = 20.
"""

import pytest

from conftest import print_table
from repro.analysis.groups_math import (
    manytrust_failure_probability,
    minimum_group_size,
)

H_VALUES = [1, 2, 5, 10, 15, 20]


def test_fig13_curve(benchmark):
    benchmark(lambda: minimum_group_size(0.2, 1024, h=20))

    sizes = {h: minimum_group_size(0.2, 1024, h) for h in H_VALUES}
    rows = [
        (h, sizes[h], f"{manytrust_failure_probability(sizes[h], 0.2, h, 1024):.1e}")
        for h in H_VALUES
    ]
    print_table(
        "Figure 13: required group size vs h (f=0.2, G=1024, target 2^-64)",
        ["h", "k", "failure prob"],
        rows,
    )
    print(
        "paper: k=32 at h=1 rising to ~70 at h=20; §4.5 quotes k>=33 for "
        "h=2 (single-group bound; the union-bound curve gives 35 — see "
        "EXPERIMENTS.md)"
    )

    # Shape anchors.
    assert sizes[1] == 32
    assert 65 <= sizes[20] <= 80
    # Monotone increasing, roughly 2 extra members per extra honest server.
    deltas = [sizes[b] - sizes[a] for a, b in zip(H_VALUES, H_VALUES[1:])]
    assert all(d > 0 for d in deltas)
    # Every size actually meets the target.
    for h, k in sizes.items():
        assert manytrust_failure_probability(k, 0.2, h, 1024) < 2 ** -64
