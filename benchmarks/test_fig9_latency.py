"""Figure 9: end-to-end latency vs number of messages (1,024 servers,
microblogging 160 B and dialing 80 B).

"The latency increases linearly with the total number of messages...
For both applications, our prototype can handle over a million users
with a latency of 28 minutes."
"""

import pytest

from conftest import print_table
from repro.sim import AtomSimulator, SimConfig

MESSAGE_COUNTS = [2 ** 18, 2 ** 19, 2 ** 20, 2 ** 21]
PAPER_MILLION_MICROBLOG_MIN = 28.2
PAPER_MILLION_DIAL_MIN = 27.9


def test_fig9_sweep(benchmark):
    micro = AtomSimulator(SimConfig(num_servers=1024, num_groups=1024))
    dial = AtomSimulator(
        SimConfig(
            num_servers=1024, num_groups=1024, application="dialing", message_size=80
        )
    )
    benchmark(lambda: micro.simulate_round(2 ** 20))

    rows = []
    micro_series, dial_series = [], []
    for m in MESSAGE_COUNTS:
        lm = micro.latency_minutes(m)
        ld = dial.latency_minutes(m)
        micro_series.append(lm)
        dial_series.append(ld)
        rows.append((f"{m / 1e6:.2f}M", f"{lm:.1f}", f"{ld:.1f}"))
    print_table(
        "Figure 9: end-to-end latency (min), 1,024 servers",
        ["messages", "microblog", "dialing"],
        rows,
    )
    print(
        f"paper anchors: 1M microblog = {PAPER_MILLION_MICROBLOG_MIN} min, "
        f"1M dialing = {PAPER_MILLION_DIAL_MIN} min; linear growth"
    )

    # Shape: the headline numbers.
    assert micro_series[2] == pytest.approx(PAPER_MILLION_MICROBLOG_MIN, rel=0.1)
    assert dial_series[2] == pytest.approx(PAPER_MILLION_DIAL_MIN, rel=0.15)
    # Shape: linear in message count (above the fixed dummy offset).
    assert micro_series[3] / micro_series[2] == pytest.approx(2.0, rel=0.2)
    # Shape: both applications support >1M users within ~half an hour.
    assert micro_series[2] < 35 and dial_series[2] < 35
