"""Table 3: latency of the cryptographic primitives.

Times our pure-Python substrate across the backend dimension — the
256-bit Schnorr group (``P256ISH``) and the real NIST P-256 curve
(``P256``, what the paper actually measures) — and prints each next to
the paper's P-256/Go numbers.  Absolute values differ (pure Python vs
Go native crypto); the *ordering* and ratios — ReEnc > Enc, ShufProof
≫ Shuffle, verify > prove for shuffles — must match on every backend.
"""

import pytest

from conftest import print_table
from repro.crypto.elgamal import AtomElGamal
from repro.crypto.groups import get_group
from repro.crypto.nizk import (
    prove_encryption,
    prove_reencryption,
    verify_encryption,
    verify_reencryption,
)
from repro.crypto.shuffle_proof import prove_shuffle, verify_shuffle
from repro.sim.costmodel import PrimitiveCosts

PAPER = PrimitiveCosts.paper_table3()
BATCH = 64  # shuffle batch (scaled to the paper's per-1,024 figures)


@pytest.fixture(scope="module", params=["P256ISH", "P256"])
def setup(request):
    group = get_group(request.param)
    scheme = AtomElGamal(group)
    kp = scheme.keygen()
    nxt = scheme.keygen()
    message = group.encode(b"table3 benchmark")
    ct, r = scheme.encrypt(kp.public, message)
    cts = [scheme.encrypt(kp.public, message)[0] for _ in range(BATCH)]
    return group, scheme, kp, nxt, message, ct, r, cts


def test_enc(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    result = benchmark(lambda: scheme.encrypt(kp.public, message))
    assert result is not None


def test_reenc(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    benchmark(lambda: scheme.reencrypt(kp.secret, nxt.public, ct))


def test_shuffle_batch(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    benchmark(lambda: scheme.shuffle(kp.public, cts))


def test_encproof_prove(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    benchmark(lambda: prove_encryption(group, ct, r, kp.public, 0))


def test_encproof_verify(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    proof = prove_encryption(group, ct, r, kp.public, 0)
    assert benchmark(lambda: verify_encryption(group, ct, proof, kp.public, 0))


def test_reencproof_prove(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    rr = group.random_scalar()
    out = scheme.reencrypt(kp.secret, nxt.public, ct, randomness=rr)
    benchmark(
        lambda: prove_reencryption(group, kp.secret, rr, nxt.public, ct, out)
    )


def test_reencproof_verify(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    rr = group.random_scalar()
    out = scheme.reencrypt(kp.secret, nxt.public, ct, randomness=rr)
    proof = prove_reencryption(group, kp.secret, rr, nxt.public, ct, out)
    assert benchmark(
        lambda: verify_reencryption(group, kp.public, nxt.public, ct, out, proof)
    )


def test_shufproof_prove(benchmark, setup):
    group, scheme, kp, nxt, message, ct, r, cts = setup
    shuffled, perm, rands = scheme.shuffle(kp.public, cts)
    benchmark.pedantic(
        lambda: prove_shuffle(group, kp.public, cts, shuffled, perm, rands, rounds=8),
        rounds=1,
        iterations=1,
    )


def test_shufproof_verify_and_report(benchmark, setup):
    """Times verification, then prints the full Table 3 comparison."""
    import time

    group, scheme, kp, nxt, message, ct, r, cts = setup
    shuffled, perm, rands = scheme.shuffle(kp.public, cts)
    proof = prove_shuffle(group, kp.public, cts, shuffled, perm, rands, rounds=8)
    # batched=False: Table 3's paper numbers are element-wise per-member
    # verification costs (Neff); the batched fast path is tracked
    # separately in BENCH_fastexp.json and would shift this comparison
    # by ~14x.
    assert benchmark.pedantic(
        lambda: verify_shuffle(
            group, kp.public, cts, shuffled, proof, rounds=8, batched=False
        ),
        rounds=1,
        iterations=1,
    )

    def once(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    ours = {
        "Enc": once(lambda: scheme.encrypt(kp.public, message)),
        "ReEnc": once(lambda: scheme.reencrypt(kp.secret, nxt.public, ct)),
        "Shuffle (per msg)": once(lambda: scheme.shuffle(kp.public, cts)) / BATCH,
        "EncProof prove": once(lambda: prove_encryption(group, ct, r, kp.public, 0)),
        "ShufProof prove (per msg)": once(
            lambda: prove_shuffle(group, kp.public, cts, shuffled, perm, rands, 8)
        )
        / BATCH,
        "ShufProof verify (per msg)": once(
            lambda: verify_shuffle(
                group, kp.public, cts, shuffled, proof, 8, batched=False
            )
        )
        / BATCH,
    }
    paper = {
        "Enc": PAPER.enc,
        "ReEnc": PAPER.reenc,
        "Shuffle (per msg)": PAPER.shuffle_per_msg,
        "EncProof prove": PAPER.encproof_prove,
        "ShufProof prove (per msg)": PAPER.shufproof_prove_per_msg,
        "ShufProof verify (per msg)": PAPER.shufproof_verify_per_msg,
    }
    rows = [
        (name, f"{paper[name]:.2e}", f"{ours[name]:.2e}")
        for name in paper
    ]
    print_table(
        f"Table 3: primitive latencies (s) — {group.params.name} backend",
        ["primitive", "paper", "ours"],
        rows,
    )

    # Shape assertions the rest of the evaluation relies on:
    assert ours["ReEnc"] > ours["Enc"]
    assert ours["ShufProof prove (per msg)"] > ours["Shuffle (per msg)"]
    assert ours["ShufProof verify (per msg)"] > ours["Shuffle (per msg)"]
