"""Table 12: latency to support a million users — Atom (128/256/512/
1024 mixed servers) vs Riposte (microblogging) and Vuvuzela/Alpenhorn
(dialing), plus the §6.2 bandwidth comparison.

Paper anchors: Atom microblog 228.7/113.4/56.3/28.2 min (2.9x-23.7x
faster than Riposte's 669.2 min); Atom dialing 225.1-27.9 min (56x-450x
slower than Vuvuzela's 0.5 min); Atom <1 MB/s per server vs Vuvuzela's
166 MB/s.
"""

import pytest

from conftest import print_table
from repro.baselines.alpenhorn import alpenhorn_dial_latency_minutes
from repro.baselines.riposte import riposte_latency_minutes
from repro.baselines.vuvuzela import (
    PAPER_VUVUZELA_SERVER_BANDWIDTH_MB_S,
    vuvuzela_dial_latency_minutes,
)
from repro.sim import AtomSimulator, SimConfig

USERS = 2 ** 20
SERVER_COUNTS = [128, 256, 512, 1024]
PAPER_MICROBLOG = {128: 228.7, 256: 113.4, 512: 56.3, 1024: 28.2}
PAPER_DIAL = {128: 225.1, 256: 112.6, 512: 55.5, 1024: 27.9}


def atom_latency(n: int, application: str) -> float:
    message_size = 160 if application == "microblog" else 80
    sim = AtomSimulator(
        SimConfig(
            num_servers=n,
            num_groups=n,
            application=application,
            message_size=message_size,
        )
    )
    return sim.latency_minutes(USERS)


def test_table12(benchmark):
    benchmark(lambda: atom_latency(1024, "microblog"))

    riposte = riposte_latency_minutes(USERS)
    vuvuzela = vuvuzela_dial_latency_minutes(USERS)
    alpenhorn = alpenhorn_dial_latency_minutes(USERS)

    rows = []
    micro, dial = {}, {}
    for n in SERVER_COUNTS:
        micro[n] = atom_latency(n, "microblog")
        dial[n] = atom_latency(n, "dialing")
        rows.append(
            (
                f"Atom {n}x mixed",
                f"{micro[n]:.1f} ({riposte / micro[n]:.1f}x)",
                f"{PAPER_MICROBLOG[n]}",
                f"{dial[n]:.1f} ({dial[n] / vuvuzela:.0f}x)",
                f"{PAPER_DIAL[n]}",
            )
        )
    rows.append(("Riposte 3xc4.8xl", f"{riposte:.1f} (1x)", "669.2", "-", "-"))
    rows.append(("Vuvuzela 3xc4.8xl", "-", "-", f"{vuvuzela:.1f} (1x)", "0.5"))
    rows.append(("Alpenhorn 3xc4.8xl", "-", "-", f"{alpenhorn:.1f} (1x)", "0.5"))
    print_table(
        "Table 12: latency for one million users (min)",
        ["config", "microblog ours", "paper", "dial ours", "paper"],
        rows,
    )

    # --- shape assertions -------------------------------------------------
    # Who wins microblogging: Atom beats Riposte at every size; the
    # advantage grows with the network (paper: 2.9x -> 23.7x).
    speedups = [riposte / micro[n] for n in SERVER_COUNTS]
    assert all(s > 1 for s in speedups)
    assert speedups == sorted(speedups)
    assert speedups[-1] == pytest.approx(23.7, rel=0.25)
    # Who wins dialing: Vuvuzela, by roughly 56x at 1,024 servers.
    slowdown = dial[1024] / vuvuzela
    assert 35 < slowdown < 80
    # Bandwidth: Atom under 1 MB/s per server vs Vuvuzela's 166 MB/s.
    result = AtomSimulator(
        SimConfig(num_servers=1024, num_groups=1024)
    ).simulate_round(USERS)
    atom_mb_s = result.per_server_bandwidth_bytes_s / 1e6
    print(
        f"\nbandwidth per server: Atom {atom_mb_s:.2f} MB/s vs "
        f"Vuvuzela {PAPER_VUVUZELA_SERVER_BANDWIDTH_MB_S} MB/s (paper: <1 vs 166)"
    )
    assert atom_mb_s < 1.0
    assert atom_mb_s < PAPER_VUVUZELA_SERVER_BANDWIDTH_MB_S / 100
