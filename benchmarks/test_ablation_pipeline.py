"""Ablation: §4.7 pipelined scheduling vs latency-optimized scheduling.

The paper describes pipelining but does not evaluate it; this bench
quantifies the trade-off the text asserts: higher steady-state
throughput at the cost of per-round latency.
"""

import pytest

from conftest import print_table
from repro.sim import SimConfig
from repro.sim.pipeline import PipelinedAtomSimulator


def test_pipeline_ablation(benchmark):
    config = SimConfig(num_servers=1024, num_groups=1024)
    sim = PipelinedAtomSimulator(config)
    benchmark(lambda: sim.simulate(2 ** 20))

    rows = []
    for messages in (2 ** 19, 2 ** 20, 2 ** 21):
        comparison = sim.compare_with_latency_mode(messages)
        rows.append(
            (
                f"{messages/1e6:.2f}M",
                f"{comparison['latency_mode_round_s']/60:.1f}",
                f"{comparison['pipelined_round_s']/60:.1f}",
                f"{comparison['latency_mode_throughput']:.0f}",
                f"{comparison['pipelined_throughput']:.0f}",
                f"{comparison['throughput_gain']:.1f}x",
            )
        )
    print_table(
        "Ablation: pipelined vs latency-optimized (1,024 servers)",
        ["messages", "lat round (min)", "pipe round (min)",
         "lat msgs/s", "pipe msgs/s", "throughput gain"],
        rows,
    )

    gains = [float(r[5][:-1]) for r in rows]
    assert all(g > 1.0 for g in gains)
