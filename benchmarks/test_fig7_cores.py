"""Figure 7: speed-up of one mixing iteration vs cores per server
(32-server group; baseline: all servers have four cores).

"The speed-up is nearly linear for the trap-variant... The speed-up of
the NIZK variant is sub-linear because the NIZK proof generation and
verification technique we use is inherently sequential."
"""

import pytest

from conftest import print_table
from repro.sim.costmodel import PrimitiveCosts
from repro.sim.machines import MachineSpec, amdahl_speedup, PARALLEL_FRACTION
from repro.sim.mixnet import GroupMixModel
from repro.sim.network import NetworkModel

CORE_COUNTS = [4, 8, 16, 36]
MESSAGES = 16384  # compute-dominated load (Figure 5's upper end)


def model_for(variant: str) -> GroupMixModel:
    return GroupMixModel(
        PrimitiveCosts.paper_table3(),
        NetworkModel(),
        [MachineSpec(4, 100.0)] * 32,
        variant=variant,
    )


def test_fig7_sweep(benchmark):
    trap = model_for("trap")
    nizk = model_for("nizk")
    benchmark(lambda: trap.iteration_time_with_cores(36, MESSAGES))

    trap_base = trap.iteration_time_with_cores(4, MESSAGES)
    nizk_base = nizk.iteration_time_with_cores(4, MESSAGES)
    rows = []
    trap_speedups, nizk_speedups = [], []
    for cores in CORE_COUNTS:
        s_trap = trap_base / trap.iteration_time_with_cores(cores, MESSAGES)
        s_nizk = nizk_base / nizk.iteration_time_with_cores(cores, MESSAGES)
        trap_speedups.append(s_trap)
        nizk_speedups.append(s_nizk)
        rows.append((cores, f"{s_trap:.2f}x", f"{s_nizk:.2f}x", f"{cores / 4:.0f}x"))
    print_table(
        "Figure 7: speed-up over 4-core servers",
        ["cores", "trap", "NIZK", "ideal"],
        rows,
    )
    print(
        "paper: trap near-linear (~8x at 36 cores), NIZK sub-linear; "
        f"parallel fractions used: {PARALLEL_FRACTION}"
    )

    # Shape: both monotonically increasing.
    assert trap_speedups == sorted(trap_speedups)
    assert nizk_speedups == sorted(nizk_speedups)
    # Shape: trap close to linear, NIZK clearly below trap.
    assert trap_speedups[-1] > 4.5
    assert nizk_speedups[-1] < trap_speedups[-1]
    # Amdahl consistency: the closed-form compute-only speed-up is an
    # upper bound on the model (network hops and transfers dilute it).
    closed_form = amdahl_speedup(36, PARALLEL_FRACTION["trap"]) / amdahl_speedup(
        4, PARALLEL_FRACTION["trap"]
    )
    assert trap_speedups[-1] <= closed_form * 1.05
