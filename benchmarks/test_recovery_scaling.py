"""Node-restore scaling (``"recovery_scaling"`` in BENCH_fastexp.json).

The point of checkpoint shipping: replacing a node by replaying its
full journal is O(history) — the restore cost grows with every round
the stream has run — while restoring from a shipped bundle is O(state),
flat in stream length.  This benchmark measures the disk-bound restore
path (journal scan + liveness mask, what a restarted ``repro serve``
process does before replaying open rounds) against fleet intake
journals of 10 / 50 / 200 rounds, and asserts the shipped restore is
both faster than full replay at depth and flat across depths.
"""

import json
import struct
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.net import envelopes as ev
from repro.store.compact import REC_CLOSE, REC_ENVELOPE, REC_OPEN, fleet_liveness
from repro.store.segments import LogDir
from repro.store.ship import CheckpointShipper

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastexp.json"

HISTORIES = [10, 50, 200]
ENVELOPES_PER_ROUND = 64
BODY_BYTES = 256
REPEAT = 3


def _update_bench(fields: dict) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.update(fields)
    data["unix_time"] = int(time.time())
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _envelope_record(round_id: int) -> bytes:
    """A journal-shaped intake record: a real wire header (the liveness
    peek reads ``round_id`` out of it) ahead of an opaque body."""
    header = ev._HEADER.pack(
        b"AT", 1, int(ev.Kind.SUBMIT_TRAP), round_id, 0, 3, round_id,
        BODY_BYTES,
    )
    return header + bytes(BODY_BYTES)


def _make_journal(root: Path, rounds: int) -> None:
    """``rounds`` of intake with every round but the last closed — the
    worst realistic history: one live round atop a long dead prefix.
    No rotation/compaction: this is the *unsharded* O(history) layout a
    replacement would otherwise replay."""
    log = LogDir(root, fsync_every=0, legacy_name="fleet.wal")
    for r in range(rounds):
        log.append(
            REC_OPEN,
            json.dumps(
                {
                    "round_id": r,
                    "fresh": r == 0,
                    "epoch_round": 0,
                    "seed": "00" * 8,
                    "counter": r,
                }
            ).encode(),
        )
        for _ in range(ENVELOPES_PER_ROUND):
            log.append(REC_ENVELOPE, _envelope_record(r))
        if r != rounds - 1:
            log.append(REC_CLOSE, json.dumps({"round_id": r}).encode())
    log.close()


def _restore_s(root: Path) -> float:
    """The restore-path cost: scan the journal and compute the live
    set (best-of-N; record decode + liveness dominate, exactly what a
    restarted process pays before re-handling open rounds)."""
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        scan = LogDir.scan_dir(root, "fleet.wal")
        fleet_liveness(scan.records)
        best = min(best, time.perf_counter() - start)
    assert not scan.truncated
    return best


@pytest.mark.slow
def test_recovery_scaling(tmp_path):
    shipper = CheckpointShipper(
        liveness=fleet_liveness, legacy_name="fleet.wal", kind="fleet"
    )
    rows = []
    record = {}
    for rounds in HISTORIES:
        source = tmp_path / f"history-{rounds}"
        _make_journal(source, rounds)
        replay_s = _restore_s(source)
        replay_bytes = LogDir.scan_dir(source, "fleet.wal").disk_bytes

        bundle = shipper.build(source)
        installed = tmp_path / f"shipped-{rounds}"
        shipper.install(installed, bundle)
        shipped_s = _restore_s(installed)
        shipped_bytes = LogDir.scan_dir(installed, "fleet.wal").disk_bytes

        rows.append(
            (
                f"{rounds}",
                f"{replay_s * 1e3:.1f}",
                f"{replay_bytes:,}",
                f"{shipped_s * 1e3:.1f}",
                f"{shipped_bytes:,}",
                f"{len(bundle.records)}",
            )
        )
        record[str(rounds)] = {
            "replay_restore_s": round(replay_s, 5),
            "replay_bytes": replay_bytes,
            "shipped_restore_s": round(shipped_s, 5),
            "shipped_bytes": shipped_bytes,
            "shipped_records": len(bundle.records),
        }

    print_table(
        "Node restore: full-journal replay vs checkpoint-shipped bundle",
        [
            "rounds", "replay (ms)", "replay bytes",
            "shipped (ms)", "shipped bytes", "shipped records",
        ],
        rows,
    )
    _update_bench(
        {
            "recovery_scaling": {
                "envelopes_per_round": ENVELOPES_PER_ROUND,
                "body_bytes": BODY_BYTES,
                "histories": record,
            }
        }
    )

    deepest = record[str(HISTORIES[-1])]
    shallow = record[str(HISTORIES[0])]
    # O(state) beats O(history) once history is deep ...
    assert deepest["shipped_restore_s"] < deepest["replay_restore_s"], (
        "shipped restore must be faster than full replay at "
        f"{HISTORIES[-1]} rounds"
    )
    # ... and stays flat: the shipped suffix is one open round whatever
    # the stream length (generous 4x margin for timer noise on shared
    # runners; replay grows ~20x over the same span).
    assert deepest["shipped_restore_s"] < max(
        4 * shallow["shipped_restore_s"], 0.05
    ), "shipped restore must not grow with history length"
    assert (
        abs(deepest["shipped_bytes"] - shallow["shipped_bytes"]) < 64
    ), (
        "the shipped bundle is one open round of state, independent of "
        "history (only the round-number digits in the open mark differ)"
    )
