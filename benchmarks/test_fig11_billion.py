"""Figure 11: simulated speed-up routing one billion microblogging
messages on 2^10 .. 2^15 servers, relative to 1,024 servers.

"At this scale, the speed-up is sub-linear in the number of servers"
because of (1) the G^2 inter-layer connections and (2) the single
trustee group's TLS handling.  Paper anchors: 483.6 / 244.4 / 122.9 /
65.5 / 36.7 / 20.5 hours.
"""

import pytest

from conftest import print_table
from repro.sim import AtomSimulator, SimConfig

LOG_SERVER_COUNTS = [10, 11, 12, 13, 14, 15]
PAPER_HOURS = {10: 483.6, 11: 244.4, 12: 122.9, 13: 65.5, 14: 36.7, 15: 20.5}
MESSAGES = 10 ** 9


def test_fig11_sweep(benchmark):
    benchmark(
        lambda: AtomSimulator(
            SimConfig(num_servers=2 ** 15, num_groups=2 ** 15)
        ).simulate_round(MESSAGES)
    )

    hours = {}
    overheads = {}
    for log_n in LOG_SERVER_COUNTS:
        n = 2 ** log_n
        result = AtomSimulator(
            SimConfig(num_servers=n, num_groups=n)
        ).simulate_round(MESSAGES)
        hours[log_n] = result.total_hours
        overheads[log_n] = result.overhead_s / 3600

    base = hours[10]
    rows = [
        (
            f"2^{log_n}",
            f"{hours[log_n]:.1f}",
            PAPER_HOURS[log_n],
            f"{base / hours[log_n]:.1f}x",
            f"{PAPER_HOURS[10] / PAPER_HOURS[log_n]:.1f}x",
            f"{overheads[log_n]:.2f}",
        )
        for log_n in LOG_SERVER_COUNTS
    ]
    print_table(
        "Figure 11: 1B messages at scale",
        ["servers", "ours (hr)", "paper (hr)", "our speed-up", "paper", "conn overhead (hr)"],
        rows,
    )

    # Shape: near-linear for the first doublings...
    assert base / hours[11] == pytest.approx(2.0, rel=0.15)
    assert base / hours[12] == pytest.approx(4.0, rel=0.15)
    # ...and clearly sub-linear at 2^15 (paper: 23.6x vs 32x ideal).
    final_speedup = base / hours[15]
    assert 15 < final_speedup < 28
    # Overhead grows superlinearly with group count.
    assert overheads[15] > 8 * overheads[12]
