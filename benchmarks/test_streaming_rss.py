"""Bounded-memory data plane (``"streaming_rss"`` in BENCH_fastexp.json).

Runs one complete seeded round per data plane in a **subprocess**
(``scripts/stream_rss.py``) so ``ru_maxrss`` is the round's own peak
RSS, not the pytest process's, and asserts the batch+spill plane stays
under a fixed memory bound while recording msgs/s for trajectory
tracking.  The default tier is sized for the tier-1 budget; scale it
up with environment variables, e.g. the acceptance-scale run:

    STREAM_RSS_MESSAGES=100000 STREAM_RSS_GROUP=P256 \\
    STREAM_RSS_LIMIT_MIB=1024 \\
        PYTHONPATH=src pytest -q -s benchmarks/test_streaming_rss.py

(TOY at 10^5 finishes in minutes; P-256 at 10^5 is an hours-long
soak on this 1-CPU container — the plane is the same code path, so
the tiers differ only in scale.)
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from conftest import print_table

REPO = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO / "BENCH_fastexp.json"
SCRIPT = REPO / "scripts" / "stream_rss.py"

MESSAGES = int(os.environ.get("STREAM_RSS_MESSAGES", "5000"))
GROUP = os.environ.get("STREAM_RSS_GROUP", "TOY").upper()
SPILL_THRESHOLD = int(os.environ.get("STREAM_RSS_SPILL", "512"))
# Fixed bound for the default tier (measured ~35 MiB peak; interpreter
# baseline alone is ~25 MiB).  Env-overridden tiers bring their own.
RSS_LIMIT_MIB = float(
    os.environ.get(
        "STREAM_RSS_LIMIT_MIB",
        "160" if MESSAGES <= 5000 and GROUP == "TOY" else "1024",
    )
)


def _update_bench(fields: dict) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.update(fields)
    data["unix_time"] = int(time.time())
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _run_plane(data_plane: str, spill_threshold: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--messages", str(MESSAGES),
            "--group", GROUP,
            "--data-plane", data_plane,
            "--spill-threshold", str(spill_threshold),
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    report = json.loads(proc.stdout)
    assert report["ok"] and report["delivered"] == MESSAGES
    return report


@pytest.mark.slow
def test_streaming_rss():
    batch = _run_plane("batch", SPILL_THRESHOLD)
    legacy = _run_plane("object", 0)

    # Incremental RSS over the interpreter+imports baseline is the
    # plane's own footprint; the peak bound is the acceptance check.
    batch_delta = batch["peak_rss_mib"] - batch["rss_baseline_mib"]
    legacy_delta = legacy["peak_rss_mib"] - legacy["rss_baseline_mib"]

    print_table(
        f"Streaming RSS ({MESSAGES} msgs, {GROUP}, spill={SPILL_THRESHOLD})",
        ["metric", "batch+spill", "object"],
        [
            ("peak RSS (MiB)", batch["peak_rss_mib"], legacy["peak_rss_mib"]),
            ("RSS over baseline (MiB)", round(batch_delta, 1), round(legacy_delta, 1)),
            ("after intake (MiB)", batch["rss_after_intake_mib"], legacy["rss_after_intake_mib"]),
            ("intake (s)", batch["intake_s"], legacy["intake_s"]),
            ("mix (s)", batch["mix_s"], legacy["mix_s"]),
            ("msgs/s", batch["msgs_per_s"], legacy["msgs_per_s"]),
        ],
    )

    _update_bench(
        {
            "streaming_rss": {
                "crypto_group": GROUP,
                "messages": MESSAGES,
                "spill_threshold": SPILL_THRESHOLD,
                "iterations": batch["iterations"],
                "rss_limit_mib": RSS_LIMIT_MIB,
                "batch_peak_rss_mib": batch["peak_rss_mib"],
                "object_peak_rss_mib": legacy["peak_rss_mib"],
                "batch_rss_over_baseline_mib": round(batch_delta, 1),
                "object_rss_over_baseline_mib": round(legacy_delta, 1),
                "batch_msgs_per_s": batch["msgs_per_s"],
                "object_msgs_per_s": legacy["msgs_per_s"],
                "batch_total_s": batch["total_s"],
                "object_total_s": legacy["total_s"],
            }
        }
    )

    assert batch["peak_rss_mib"] <= RSS_LIMIT_MIB, (
        f"batch+spill round peaked at {batch['peak_rss_mib']} MiB; "
        f"the bounded-memory data plane must stay under {RSS_LIMIT_MIB} MiB"
    )
    # The redesign's point: the batch plane's own footprint must be
    # well under the object plane's (measured ~4x less at this tier).
    assert batch_delta <= 0.8 * legacy_delta, (
        f"batch plane used {batch_delta:.1f} MiB over baseline vs the "
        f"object plane's {legacy_delta:.1f} MiB — no longer bounded?"
    )
