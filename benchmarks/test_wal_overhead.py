"""Durable-store overhead (``"wal_overhead"`` in BENCH_fastexp.json).

The write-ahead log rides inside the round's hot path (node-side
intake journaling, per-layer commit + checkpoint records), so it must
be close to free next to the crypto: the same seeded P-256 round is
driven with a ``--state-dir`` store and with the no-op store, and the
in-process overhead is asserted under 1.25x.  The absolute log size
and per-record append cost are recorded alongside for trajectory
tracking.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.crypto.groups import DeterministicRng
from repro.store.segments import LogDir
from repro.store.wal import WriteAheadLog

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastexp.json"
OVERHEAD_LIMIT = 1.25


def _update_bench(fields: dict) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.update(fields)
    data["unix_time"] = int(time.time())
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _build_config(state_dir=None):
    return DeploymentConfig(
        num_servers=6, num_groups=2, group_size=2, variant="trap",
        iterations=3, message_size=8, crypto_group="P256",
        state_dir=str(state_dir) if state_dir else None,
    )


def _run_round(state_dir=None) -> None:
    """The envelope-overhead benchmark's seeded round, trap variant
    (the store's worst case: trap pairs double the intake envelopes
    and the commitments ride along)."""
    with AtomDeployment(_build_config(state_dir)) as dep:
        rng = DeterministicRng(b"wal-round")
        rnd = dep.start_round(0, rng=rng)
        client = Client(dep.group, DeterministicRng(b"wal-client"))
        for i in range(8):
            dep.submit_trap(rnd, b"m%d" % i, i % 2, client)
        dep.pad_round(rnd, DeterministicRng(b"wal-pad"))
        result = dep.run_round(rnd, DeterministicRng(b"wal-mix"))
        assert result.ok and len(result.messages) == 8


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
def test_wal_overhead(benchmark, tmp_path_factory):
    # Warm both paths (fixed-base tables, imports) before timing;
    # best-of-5 min-vs-min cancels scheduler noise on 1-CPU runners
    # (same protocol as the envelope_overhead benchmark).
    _run_round()
    _run_round(tmp_path_factory.mktemp("warm"))

    def store_round():
        _run_round(tmp_path_factory.mktemp("wal"))

    null_s = _best_of(_run_round, 5)
    store_s = _best_of(store_round, 5)
    ratio = store_s / null_s

    # Absolute log footprint + raw append cost of one durable round
    # (segmented layout: size and count come from the manifest scan).
    wal_dir = tmp_path_factory.mktemp("size")
    _run_round(wal_dir)
    scan = LogDir.scan_dir(wal_dir)
    wal_bytes = scan.disk_bytes
    records = len(scan.records)

    append_dir = tmp_path_factory.mktemp("append")
    wal = WriteAheadLog(append_dir / "a.wal", fsync_every=8)
    payload = b"x" * 512
    start = time.perf_counter()
    for _ in range(256):
        wal.append(1, payload)
    append_ms = (time.perf_counter() - start) / 256 * 1e3
    wal.close()

    benchmark.pedantic(store_round, rounds=1, iterations=1)

    print_table(
        "Durable-store overhead (seeded P-256 trap round)",
        ["metric", "value"],
        [
            ("no-op store round (s)", f"{null_s:.3f}"),
            ("durable store round (s)", f"{store_s:.3f}"),
            ("store / no-op", f"{ratio:.3f}x"),
            ("wal bytes per round", f"{wal_bytes:,}"),
            ("wal records per round", f"{records}"),
            ("append 512B record (ms)", f"{append_ms:.4f}"),
        ],
    )

    _update_bench(
        {
            "wal_overhead": {
                "round_group": "P256",
                "variant": "trap",
                "null_round_s": round(null_s, 4),
                "store_round_s": round(store_s, 4),
                "overhead_ratio": round(ratio, 4),
                "wal_bytes_per_round": wal_bytes,
                "wal_records_per_round": records,
                "append_512B_ms": round(append_ms, 4),
                "fsync_every": 8,
            }
        }
    )

    assert ratio <= OVERHEAD_LIMIT, (
        f"the durable store costs {ratio:.2f}x the no-op store; "
        f"the write-ahead log must stay under {OVERHEAD_LIMIT}x in-process"
    )
